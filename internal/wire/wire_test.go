package wire

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPacketValidate(t *testing.T) {
	ok := &Packet{WireLen: 100, Payload: make([]byte, 100)}
	if err := ok.Validate(); err != nil {
		t.Error(err)
	}
	tooBig := &Packet{WireLen: 5000, Payload: make([]byte, SnapLen+1)}
	if err := tooBig.Validate(); err == nil {
		t.Error("snaplen violation must fail")
	}
	inconsistent := &Packet{WireLen: 10, Payload: make([]byte, 20)}
	if err := inconsistent.Validate(); err == nil {
		t.Error("capLen > wireLen must fail")
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	pkts := []*Packet{
		{Time: 1000, SrcIP: 0x0A000001, DstIP: 0x0A000002, SrcPort: 5000, DstPort: 80,
			Flags: FlagSYN, Seq: 100, WireLen: 0},
		{Time: 2000, SrcIP: 0x0A000002, DstIP: 0x0A000001, SrcPort: 80, DstPort: 5000,
			Flags: FlagSYN | FlagACK, Seq: 900, WireLen: 0},
		{Time: 3000, SrcIP: 0x0A000001, DstIP: 0x0A000002, SrcPort: 5000, DstPort: 80,
			Flags: FlagACK | FlagPSH, Seq: 101, WireLen: 30,
			Payload: []byte("GET / HTTP/1.1\r\nHost: x\r\n\r\n")},
		{Time: 4000, SrcIP: 0x0A000002, DstIP: 0x0A000001, SrcPort: 80, DstPort: 5000,
			Flags: FlagACK, Seq: 901, WireLen: 1000, Payload: []byte("HTTP/1.1 200 OK\r\n\r\n")},
	}
	for _, p := range pkts {
		if err := w.Write(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != len(pkts) {
		t.Errorf("Count = %d", w.Count())
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range pkts {
		got, err := r.Read()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got.Time != want.Time || got.SrcIP != want.SrcIP || got.DstIP != want.DstIP ||
			got.SrcPort != want.SrcPort || got.DstPort != want.DstPort ||
			got.Flags != want.Flags || got.Seq != want.Seq || got.WireLen != want.WireLen ||
			!bytes.Equal(got.Payload, want.Payload) {
			t.Errorf("record %d: got %+v want %+v", i, got, want)
		}
	}
	if _, err := r.Read(); err != io.EOF {
		t.Errorf("expected EOF, got %v", err)
	}
}

func TestReaderRejectsGarbage(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("not a trace file"))); err == nil {
		t.Error("garbage header must fail")
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(time int64, src, dst uint32, sp, dp uint16, flags uint8, seq uint32, pay []byte) bool {
		if len(pay) > SnapLen {
			pay = pay[:SnapLen]
		}
		p := &Packet{Time: time, SrcIP: src, DstIP: dst, SrcPort: sp, DstPort: dp,
			Flags: flags, Seq: seq, WireLen: uint32(len(pay)), Payload: pay}
		var buf bytes.Buffer
		w, _ := NewWriter(&buf)
		if err := w.Write(p); err != nil {
			return false
		}
		w.Flush()
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		got, err := r.Read()
		if err != nil {
			return false
		}
		return got.Time == p.Time && got.Seq == p.Seq && bytes.Equal(got.Payload, p.Payload) &&
			got.WireLen == p.WireLen
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// collectingHandler records flow events for assertions.
type collectingHandler struct {
	established int
	closed      int
	data        map[Dir][]byte
	gaps        int
}

func newCollectingHandler() *collectingHandler {
	return &collectingHandler{data: map[Dir][]byte{}}
}

func (h *collectingHandler) FlowEstablished(f *Flow) { h.established++ }
func (h *collectingHandler) FlowClosed(f *Flow)      { h.closed++ }
func (h *collectingHandler) Data(f *Flow, dir Dir, t int64, payload []byte, gap bool) {
	if gap {
		h.gaps++
	}
	h.data[dir] = append(h.data[dir], payload...)
}

// mkConn builds the packet sequence of a simple HTTP exchange.
func mkConn(base int64) []*Packet {
	req := []byte("GET /index.html HTTP/1.1\r\nHost: example.com\r\n\r\n")
	resp := []byte("HTTP/1.1 200 OK\r\nContent-Length: 10\r\n\r\n")
	return []*Packet{
		{Time: base, SrcIP: 1, DstIP: 2, SrcPort: 5000, DstPort: 80, Flags: FlagSYN, Seq: 99},
		{Time: base + 20e6, SrcIP: 2, DstIP: 1, SrcPort: 80, DstPort: 5000, Flags: FlagSYN | FlagACK, Seq: 999},
		{Time: base + 40e6, SrcIP: 1, DstIP: 2, SrcPort: 5000, DstPort: 80, Flags: FlagACK, Seq: 100},
		{Time: base + 41e6, SrcIP: 1, DstIP: 2, SrcPort: 5000, DstPort: 80, Flags: FlagACK | FlagPSH,
			Seq: 100, WireLen: uint32(len(req)), Payload: req},
		{Time: base + 60e6, SrcIP: 2, DstIP: 1, SrcPort: 80, DstPort: 5000, Flags: FlagACK | FlagPSH,
			Seq: 1000, WireLen: uint32(len(resp)), Payload: resp},
		// Body: on the wire but not captured.
		{Time: base + 61e6, SrcIP: 2, DstIP: 1, SrcPort: 80, DstPort: 5000, Flags: FlagACK,
			Seq: 1000 + uint32(len(resp)), WireLen: 10},
		{Time: base + 80e6, SrcIP: 1, DstIP: 2, SrcPort: 5000, DstPort: 80, Flags: FlagFIN, Seq: 100 + uint32(len(req))},
	}
}

func TestFlowTableBasicExchange(t *testing.T) {
	h := newCollectingHandler()
	ft := NewFlowTable(h)
	var flow *Flow
	for _, p := range mkConn(1e9) {
		ft.Add(p)
		if flow == nil {
			flow, _ = ft.lookup(p.Tuple())
		}
	}
	if h.established != 1 || h.closed != 1 {
		t.Errorf("established=%d closed=%d", h.established, h.closed)
	}
	if !bytes.Contains(h.data[ClientToServer], []byte("GET /index.html")) {
		t.Error("request payload not delivered")
	}
	if !bytes.Contains(h.data[ServerToClient], []byte("200 OK")) {
		t.Error("response payload not delivered")
	}
	rtt, ok := flow.HandshakeRTT()
	if !ok || rtt != 20e6 {
		t.Errorf("handshake RTT = %d ok=%v, want 20ms", rtt, ok)
	}
	if flow.WireBytes[ServerToClient] != uint64(len("HTTP/1.1 200 OK\r\nContent-Length: 10\r\n\r\n"))+10 {
		t.Errorf("server bytes = %d", flow.WireBytes[ServerToClient])
	}
	if ft.NumActive() != 0 {
		t.Errorf("NumActive = %d after close", ft.NumActive())
	}
}

func TestFlowTableReorderingAndDuplication(t *testing.T) {
	h := newCollectingHandler()
	ft := NewFlowTable(h)
	pkts := mkConn(1e9)
	// Swap request and response-header packets; duplicate the request.
	reordered := []*Packet{pkts[0], pkts[1], pkts[2], pkts[4], pkts[3], pkts[3], pkts[5], pkts[6]}
	for _, p := range reordered {
		ft.Add(p)
	}
	ft.Flush()
	if got := bytes.Count(h.data[ClientToServer], []byte("GET /index.html")); got != 1 {
		t.Errorf("request delivered %d times, want exactly once", got)
	}
	if !bytes.Contains(h.data[ServerToClient], []byte("200 OK")) {
		t.Error("response payload lost under reordering")
	}
	if h.gaps != 0 {
		t.Errorf("unexpected gaps: %d", h.gaps)
	}
}

func TestReassemblerRandomizedOrderProperty(t *testing.T) {
	// Random permutations of a segmented stream must always reassemble to
	// the original bytes.
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		msg := make([]byte, 900+rng.Intn(600))
		for i := range msg {
			msg[i] = byte(rng.Intn(256))
		}
		var segs []segment
		seq := uint32(rng.Uint32())
		for off := 0; off < len(msg); {
			n := 1 + rng.Intn(200)
			if off+n > len(msg) {
				n = len(msg) - off
			}
			segs = append(segs, segment{seq: seq + uint32(off), payload: msg[off : off+n], wireLen: uint32(n)})
			off += n
		}
		first := segs[0] // keep first segment first so the stream start is known
		rest := segs[1:]
		rng.Shuffle(len(rest), func(i, j int) { rest[i], rest[j] = rest[j], rest[i] })
		r := &reassembler{}
		var got []byte
		push := func(s segment) {
			for _, c := range r.push(s.seq, 0, s.payload, s.wireLen) {
				if c.gap {
					t.Fatal("gap in gapless stream")
				}
				got = append(got, c.payload...)
			}
		}
		push(first)
		for _, s := range rest {
			push(s)
			if rng.Intn(4) == 0 { // sprinkle duplicates
				push(s)
			}
		}
		if !bytes.Equal(got, msg) {
			t.Fatalf("trial %d: reassembly mismatch (%d vs %d bytes)", trial, len(got), len(msg))
		}
	}
}

func TestFlowTableMidStreamFlow(t *testing.T) {
	// A flow whose handshake predates the trace must still deliver data and
	// classify the lower port as the server.
	h := newCollectingHandler()
	ft := NewFlowTable(h)
	data := []byte("HTTP/1.1 200 OK\r\n\r\n")
	ft.Add(&Packet{Time: 1, SrcIP: 2, DstIP: 1, SrcPort: 80, DstPort: 5000,
		Flags: FlagACK, Seq: 1, WireLen: uint32(len(data)), Payload: data})
	if h.established != 1 {
		t.Fatal("mid-stream flow must establish on first data")
	}
	ft.Flush()
	if !bytes.Contains(h.data[ServerToClient], []byte("200 OK")) {
		t.Error("mid-stream direction misclassified")
	}
	if _, ok := (&Flow{}).HandshakeRTT(); ok {
		t.Error("missing handshake must report !ok")
	}
}

func TestFlowTableConcurrentFlows(t *testing.T) {
	h := newCollectingHandler()
	ft := NewFlowTable(h)
	var pkts []*Packet
	for c := 0; c < 20; c++ {
		conn := mkConn(int64(c+1) * 1e9)
		for _, p := range conn {
			p.SrcIP += uint32(c) * 10
			p.DstIP += uint32(c) * 10
			pkts = append(pkts, p)
		}
	}
	// Interleave round-robin.
	for i := 0; i < len(mkConn(0)); i++ {
		for c := 0; c < 20; c++ {
			ft.Add(pkts[c*len(mkConn(0))+i])
		}
	}
	if h.established != 20 || h.closed != 20 {
		t.Errorf("established=%d closed=%d, want 20/20", h.established, h.closed)
	}
}
