package wire

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
)

func randomTrace(t *testing.T, n int, seed int64) *bytes.Buffer {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		payload := make([]byte, rng.Intn(64))
		rng.Read(payload)
		p := &Packet{
			Time:  rng.Int63n(1e12),
			SrcIP: rng.Uint32(), DstIP: rng.Uint32(),
			SrcPort: uint16(rng.Intn(65536)), DstPort: uint16(rng.Intn(65536)),
			Flags: uint8(rng.Intn(32)), Seq: rng.Uint32(),
			WireLen: uint32(len(payload)), Payload: payload,
		}
		if err := w.Write(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return &buf
}

func sortAndCheck(t *testing.T, in *bytes.Buffer, opt SortOptions, n int) {
	t.Helper()
	orig := append([]byte(nil), in.Bytes()...)

	r, err := NewReader(bytes.NewReader(orig))
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	w, err := NewWriter(&out)
	if err != nil {
		t.Fatal(err)
	}
	if err := SortTrace(r, w, opt); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	// Output must be time-ordered and a permutation of the input.
	countTimes := func(raw []byte) (int, map[int64]int) {
		rr, err := NewReader(bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		times := map[int64]int{}
		total := 0
		for {
			p, err := rr.Read()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			times[p.Time]++
			total++
		}
		return total, times
	}
	totalIn, timesIn := countTimes(orig)
	totalOut, timesOut := countTimes(out.Bytes())
	if totalIn != n || totalOut != n {
		t.Fatalf("packet counts: in=%d out=%d want=%d", totalIn, totalOut, n)
	}
	for ts, c := range timesIn {
		if timesOut[ts] != c {
			t.Fatalf("timestamp %d count changed: %d -> %d", ts, c, timesOut[ts])
		}
	}
	rr, _ := NewReader(bytes.NewReader(out.Bytes()))
	last := int64(-1)
	for {
		p, err := rr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if p.Time < last {
			t.Fatalf("output not time-ordered: %d after %d", p.Time, last)
		}
		last = p.Time
	}
}

func TestSortTraceInMemory(t *testing.T) {
	const n = 500
	sortAndCheck(t, randomTrace(t, n, 1), SortOptions{MaxInMemory: 10000, TempDir: t.TempDir()}, n)
}

func TestSortTraceExternalMerge(t *testing.T) {
	const n = 2000
	// A tiny run size forces many spill files and the k-way merge path.
	sortAndCheck(t, randomTrace(t, n, 2), SortOptions{MaxInMemory: 64, TempDir: t.TempDir()}, n)
}

func TestSortTraceEmpty(t *testing.T) {
	sortAndCheck(t, randomTrace(t, 0, 3), SortOptions{TempDir: t.TempDir()}, 0)
}

func TestSortTraceStability(t *testing.T) {
	// Packets with equal timestamps keep their input order (stable sort and
	// source-indexed merge tie-break).
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	for i := 0; i < 100; i++ {
		w.Write(&Packet{Time: 42, Seq: uint32(i)})
	}
	w.Flush()
	r, _ := NewReader(bytes.NewReader(buf.Bytes()))
	var out bytes.Buffer
	ow, _ := NewWriter(&out)
	if err := SortTrace(r, ow, SortOptions{MaxInMemory: 16, TempDir: t.TempDir()}); err != nil {
		t.Fatal(err)
	}
	ow.Flush()
	rr, _ := NewReader(bytes.NewReader(out.Bytes()))
	for i := 0; i < 100; i++ {
		p, err := rr.Read()
		if err != nil {
			t.Fatal(err)
		}
		if p.Seq != uint32(i) {
			t.Fatalf("stability violated at %d: seq %d", i, p.Seq)
		}
	}
}
