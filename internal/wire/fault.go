package wire

import (
	"io"
	"math/rand"
)

// PacketSource is anything that yields packets until io.EOF; *Reader and
// *FaultReader both satisfy it.
type PacketSource interface {
	Read() (*Packet, error)
}

// FaultOptions configures a FaultReader. All rates are probabilities in
// [0,1] applied independently per packet; the zero value injects nothing.
type FaultOptions struct {
	// Seed makes the injected fault sequence deterministic.
	Seed int64
	// DropRate silently discards packets (capture loss).
	DropRate float64
	// DupRate re-delivers a copy of the packet immediately after it.
	DupRate float64
	// ReorderRate holds a packet back and releases it a few packets later.
	ReorderRate float64
	// ReorderDepth is the maximum displacement of a held packet; 0 means 8.
	ReorderDepth int
	// CorruptRate flips 1–3 random bits in the captured payload
	// (packets without payload pass through unchanged).
	CorruptRate float64
	// TruncateRate cuts the captured payload to a random prefix while
	// keeping WireLen, modelling harsher snaplen truncation.
	TruncateRate float64
	// SkipFirst discards this many packets before delivering anything,
	// modelling a capture that starts mid-stream.
	SkipFirst int
	// CutAfter hard-truncates the stream mid-run: after exactly this many
	// packets have been delivered, Read returns io.ErrUnexpectedEOF forever
	// — a crash of the capture process, not a clean end of trace. 0 means
	// no cut. Kill-and-resume tests use it to kill a run at a deterministic
	// packet position.
	CutAfter int
}

// FaultStats counts the faults a FaultReader actually injected.
type FaultStats struct {
	Delivered  int
	Dropped    int
	Duplicated int
	Reordered  int
	Corrupted  int
	Truncated  int
	Skipped    int  // mid-stream start records discarded
	Cut        bool // the CutAfter hard truncation fired
}

// FaultReader wraps a packet source and deterministically injects capture
// pathologies — loss, duplication, reordering, payload bit-flips, truncation
// and mid-stream starts — so ingest robustness can be tested against a known
// ground truth.
type FaultReader struct {
	src   PacketSource
	opt   FaultOptions
	rng   *rand.Rand
	stats FaultStats
	// queue holds packets due for delivery before the next source read.
	queue []*Packet
	// held are reorder-delayed packets; countdown reaches zero -> release.
	held []heldPacket
	eof  bool
}

type heldPacket struct {
	p         *Packet
	countdown int
}

// NewFaultReader wraps src with the given fault model.
func NewFaultReader(src PacketSource, opt FaultOptions) *FaultReader {
	if opt.ReorderDepth <= 0 {
		opt.ReorderDepth = 8
	}
	return &FaultReader{src: src, opt: opt, rng: rand.New(rand.NewSource(opt.Seed))}
}

// Stats returns the faults injected so far.
func (fr *FaultReader) Stats() FaultStats { return fr.stats }

// Read returns the next (possibly faulted) packet, or io.EOF once the source
// and all held packets are exhausted.
func (fr *FaultReader) Read() (*Packet, error) {
	for {
		if fr.opt.CutAfter > 0 && fr.stats.Delivered >= fr.opt.CutAfter {
			fr.stats.Cut = true
			return nil, io.ErrUnexpectedEOF
		}
		if len(fr.queue) > 0 {
			p := fr.queue[0]
			fr.queue = fr.queue[1:]
			fr.stats.Delivered++
			return p, nil
		}
		if fr.eof {
			if len(fr.held) > 0 {
				for _, h := range fr.held {
					fr.queue = append(fr.queue, h.p)
				}
				fr.held = fr.held[:0]
				continue
			}
			return nil, io.EOF
		}
		p, err := fr.src.Read()
		if err == io.EOF {
			fr.eof = true
			continue
		}
		if err != nil {
			return nil, err
		}
		if fr.stats.Skipped < fr.opt.SkipFirst {
			fr.stats.Skipped++
			continue
		}
		if fr.roll(fr.opt.DropRate) {
			fr.stats.Dropped++
			fr.tick()
			continue
		}
		if fr.roll(fr.opt.CorruptRate) && len(p.Payload) > 0 {
			p = clonePacket(p)
			flips := 1 + fr.rng.Intn(3)
			for i := 0; i < flips; i++ {
				p.Payload[fr.rng.Intn(len(p.Payload))] ^= 1 << uint(fr.rng.Intn(8))
			}
			fr.stats.Corrupted++
		}
		if fr.roll(fr.opt.TruncateRate) && len(p.Payload) > 1 {
			p = clonePacket(p)
			p.Payload = p.Payload[:fr.rng.Intn(len(p.Payload))]
			fr.stats.Truncated++
		}
		if fr.roll(fr.opt.DupRate) {
			fr.queue = append(fr.queue, clonePacket(p))
			fr.stats.Duplicated++
		}
		if fr.roll(fr.opt.ReorderRate) {
			fr.held = append(fr.held, heldPacket{p: p, countdown: 1 + fr.rng.Intn(fr.opt.ReorderDepth)})
			fr.stats.Reordered++
			continue
		}
		fr.tick()
		fr.queue = append(fr.queue, p)
	}
}

// roll draws one deterministic Bernoulli sample. The rand stream is always
// advanced so a rate change does not reshuffle every later fault decision.
func (fr *FaultReader) roll(rate float64) bool {
	v := fr.rng.Float64()
	return rate > 0 && v < rate
}

// tick ages held packets by one delivered position and releases the expired
// ones into the queue.
func (fr *FaultReader) tick() {
	kept := fr.held[:0]
	for _, h := range fr.held {
		h.countdown--
		if h.countdown <= 0 {
			fr.queue = append(fr.queue, h.p)
		} else {
			kept = append(kept, h)
		}
	}
	fr.held = kept
}

func clonePacket(p *Packet) *Packet {
	q := *p
	if p.Payload != nil {
		q.Payload = append([]byte(nil), p.Payload...)
	}
	return &q
}
