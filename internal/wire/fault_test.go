package wire

import (
	"bytes"
	"fmt"
	"io"
	"testing"
)

// sliceSource yields packets from a slice, cloning so injected mutations
// cannot leak back into the fixture.
type sliceSource struct {
	pkts []*Packet
	i    int
}

func (s *sliceSource) Read() (*Packet, error) {
	if s.i >= len(s.pkts) {
		return nil, io.EOF
	}
	p := s.pkts[s.i]
	s.i++
	return p, nil
}

func faultFixture() []*Packet {
	var pkts []*Packet
	for c := 0; c < 10; c++ {
		for _, p := range mkConn(int64(c+1) * 1e9) {
			q := *p
			q.SrcIP += uint32(c) * 100
			q.DstIP += uint32(c) * 100
			pkts = append(pkts, &q)
		}
	}
	return pkts
}

func drainFaults(t *testing.T, fr *FaultReader) []*Packet {
	t.Helper()
	var out []*Packet
	for {
		p, err := fr.Read()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("fault injection produced an invalid packet: %v", err)
		}
		out = append(out, p)
	}
}

func packetKey(p *Packet) string {
	return fmt.Sprintf("%d/%d/%d/%d/%d/%d/%d/%x", p.Time, p.SrcIP, p.DstIP, p.SrcPort, p.DstPort, p.Flags, p.Seq, p.Payload)
}

func TestFaultReaderDeterministic(t *testing.T) {
	opt := FaultOptions{Seed: 11, DropRate: 0.1, DupRate: 0.1, ReorderRate: 0.2, CorruptRate: 0.1, TruncateRate: 0.05}
	run := func() []string {
		fr := NewFaultReader(&sliceSource{pkts: faultFixture()}, opt)
		var keys []string
		for _, p := range drainFaults(t, fr) {
			keys = append(keys, packetKey(p))
		}
		return keys
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs delivered %d vs %d packets", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at packet %d", i)
		}
	}
}

func TestFaultReaderRates(t *testing.T) {
	src := faultFixture()

	t.Run("drop-all", func(t *testing.T) {
		fr := NewFaultReader(&sliceSource{pkts: src}, FaultOptions{Seed: 1, DropRate: 1})
		if got := drainFaults(t, fr); len(got) != 0 {
			t.Errorf("delivered %d packets at 100%% drop", len(got))
		}
		if fr.Stats().Dropped != len(src) {
			t.Errorf("Dropped = %d, want %d", fr.Stats().Dropped, len(src))
		}
	})

	t.Run("duplicate-all", func(t *testing.T) {
		fr := NewFaultReader(&sliceSource{pkts: src}, FaultOptions{Seed: 1, DupRate: 1})
		if got := drainFaults(t, fr); len(got) != 2*len(src) {
			t.Errorf("delivered %d packets, want %d", len(got), 2*len(src))
		}
	})

	t.Run("reorder-preserves-multiset", func(t *testing.T) {
		fr := NewFaultReader(&sliceSource{pkts: src}, FaultOptions{Seed: 5, ReorderRate: 0.5, ReorderDepth: 6})
		got := drainFaults(t, fr)
		if len(got) != len(src) {
			t.Fatalf("reordering changed packet count: %d != %d", len(got), len(src))
		}
		want := map[string]int{}
		for _, p := range src {
			want[packetKey(p)]++
		}
		displaced := false
		for i, p := range got {
			want[packetKey(p)]--
			if packetKey(p) != packetKey(src[i]) {
				displaced = true
			}
		}
		for k, n := range want {
			if n != 0 {
				t.Fatalf("packet multiset changed: %s count %d", k, n)
			}
		}
		if !displaced || fr.Stats().Reordered == 0 {
			t.Error("no packet was actually displaced")
		}
	})

	t.Run("corrupt-clones", func(t *testing.T) {
		orig := faultFixture()
		var origPayloads [][]byte
		for _, p := range orig {
			origPayloads = append(origPayloads, append([]byte(nil), p.Payload...))
		}
		fr := NewFaultReader(&sliceSource{pkts: orig}, FaultOptions{Seed: 2, CorruptRate: 1})
		got := drainFaults(t, fr)
		if fr.Stats().Corrupted == 0 {
			t.Fatal("nothing corrupted")
		}
		changed := 0
		for i, p := range got {
			if !bytes.Equal(p.Payload, origPayloads[i]) {
				changed++
			}
			if !bytes.Equal(orig[i].Payload, origPayloads[i]) {
				t.Fatal("corruption mutated the source packet")
			}
		}
		if changed != fr.Stats().Corrupted {
			t.Errorf("changed %d payloads, stats say %d", changed, fr.Stats().Corrupted)
		}
	})

	t.Run("mid-stream-start", func(t *testing.T) {
		fr := NewFaultReader(&sliceSource{pkts: src}, FaultOptions{Seed: 1, SkipFirst: 25})
		got := drainFaults(t, fr)
		if len(got) != len(src)-25 {
			t.Errorf("delivered %d, want %d", len(got), len(src)-25)
		}
		if fr.Stats().Skipped != 25 {
			t.Errorf("Skipped = %d", fr.Stats().Skipped)
		}
	})
}

// TestFaultReaderCutAfter pins the hard mid-stream truncation: exactly
// CutAfter packets are delivered, then every Read fails with
// io.ErrUnexpectedEOF (a crashed capture, not a clean end of trace), and the
// delivered prefix is identical to the uncut stream — the property
// kill-and-resume tests rely on to kill a run at a known packet position.
func TestFaultReaderCutAfter(t *testing.T) {
	src := faultFixture()
	const cut = 17

	uncut := NewFaultReader(&sliceSource{pkts: src}, FaultOptions{Seed: 9, DropRate: 0.1, ReorderRate: 0.1})
	want := drainFaults(t, uncut)

	fr := NewFaultReader(&sliceSource{pkts: src}, FaultOptions{Seed: 9, DropRate: 0.1, ReorderRate: 0.1, CutAfter: cut})
	var got []*Packet
	for {
		p, err := fr.Read()
		if err == io.ErrUnexpectedEOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, p)
	}
	if len(got) != cut {
		t.Fatalf("delivered %d packets before the cut, want %d", len(got), cut)
	}
	for i := range got {
		if packetKey(got[i]) != packetKey(want[i]) {
			t.Fatalf("packet %d differs from the uncut stream", i)
		}
	}
	if !fr.Stats().Cut {
		t.Error("Cut not recorded in stats")
	}
	if _, err := fr.Read(); err != io.ErrUnexpectedEOF {
		t.Errorf("reads after the cut must keep failing, got %v", err)
	}
}
