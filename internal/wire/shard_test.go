package wire

import (
	"math/rand"
	"testing"
)

// Both directions of a connection must land on the same shard — the whole
// point of the canonicalized hash.
func TestShardHashDirectionIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 10000; i++ {
		tup := FourTuple{
			SrcIP: rng.Uint32(), DstIP: rng.Uint32(),
			SrcPort: uint16(rng.Intn(1 << 16)), DstPort: uint16(rng.Intn(1 << 16)),
		}
		if tup.ShardHash() != tup.Reverse().ShardHash() {
			t.Fatalf("hash differs across directions for %+v", tup)
		}
	}
}

// The hash must spread realistic client populations across shards — a
// degenerate hash would serialize the whole pipeline onto one worker.
func TestShardHashSpreads(t *testing.T) {
	const shards = 8
	counts := make([]int, shards)
	// One /24-ish client population hitting one server, ephemeral ports.
	for c := 0; c < 4096; c++ {
		tup := FourTuple{
			SrcIP: 0x0A000000 + uint32(c%256), DstIP: 0x0B000001,
			SrcPort: uint16(10000 + c), DstPort: 80,
		}
		counts[tup.ShardHash()%shards]++
	}
	for i, n := range counts {
		if n < 4096/shards/2 || n > 4096/shards*2 {
			t.Fatalf("shard %d got %d of 4096 flows (counts %v)", i, n, counts)
		}
	}
}
