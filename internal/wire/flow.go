package wire

import (
	"sort"
)

// Dir is the direction of a segment within a flow.
type Dir int

// Directions relative to the connection initiator.
const (
	ClientToServer Dir = iota
	ServerToClient
)

// Flow is the per-connection state the flow table maintains: handshake
// timestamps, byte accounting, and in-order payload delivery per direction.
type Flow struct {
	// Client/Server identify the endpoints; the client sent the SYN.
	ClientIP, ServerIP     uint32
	ClientPort, ServerPort uint16
	// SYNTime and SYNACKTime are the TCP handshake timestamps (ns); zero
	// when the handshake was not observed (trace started mid-flow).
	SYNTime, SYNACKTime int64
	// FirstTime/LastTime span the packets seen on the flow.
	FirstTime, LastTime int64
	// WireBytes counts original payload bytes per direction.
	WireBytes [2]uint64
	// Packets counts packets per direction.
	Packets [2]int

	reasm [2]*reassembler
}

// HandshakeRTT returns the TCP handshake latency in nanoseconds (SYN-ACK −
// SYN), the paper's proxy for network RTT (§8.2). ok is false when either
// timestamp is missing.
func (f *Flow) HandshakeRTT() (ns int64, ok bool) {
	if f.SYNTime == 0 || f.SYNACKTime == 0 || f.SYNACKTime < f.SYNTime {
		return 0, false
	}
	return f.SYNACKTime - f.SYNTime, true
}

// reassembler delivers captured payload in sequence order, dropping
// duplicates and tolerating reordering. Gaps (bytes never captured, e.g.
// snaplen-truncated bodies) are reported so the consumer can resynchronize.
type reassembler struct {
	next    uint32 // next expected sequence number
	started bool
	pending []segment
}

type segment struct {
	seq     uint32
	time    int64
	payload []byte
	wireLen uint32
}

// seqLess handles 32-bit sequence wraparound.
func seqLess(a, b uint32) bool { return int32(a-b) < 0 }

// push adds a segment and returns the deliverable chunks in order. A chunk
// with gap=true signals missing bytes before it.
type chunk struct {
	time    int64
	payload []byte
	gap     bool
}

func (r *reassembler) push(seq uint32, t int64, payload []byte, wireLen uint32) []chunk {
	if wireLen == 0 {
		return nil
	}
	if !r.started {
		r.started = true
		r.next = seq
	}
	if seqLess(seq, r.next) {
		// Retransmission of already-delivered data; drop (possibly partial
		// overlap — the generator never emits partial overlaps).
		if !seqLess(r.next, seq+wireLen) {
			return nil
		}
		// Trim the delivered prefix.
		skip := r.next - seq
		if uint32(len(payload)) > skip {
			payload = payload[skip:]
		} else {
			payload = nil
		}
		seq = r.next
		wireLen -= skip
	}
	r.pending = append(r.pending, segment{seq: seq, time: t, payload: payload, wireLen: wireLen})
	sort.Slice(r.pending, func(i, j int) bool { return seqLess(r.pending[i].seq, r.pending[j].seq) })

	var out []chunk
	out = r.drain(out)
	// If pending segments remain and exceed a reordering window, declare a
	// gap and resynchronize at the earliest pending segment. The window is
	// generous: 64 segments.
	for len(r.pending) > 64 {
		s := r.pending[0]
		out = append(out, chunk{time: s.time, payload: s.payload, gap: true})
		r.next = s.seq + s.wireLen
		r.pending = r.pending[1:]
		out = r.drain(out)
	}
	return out
}

// drain delivers every pending segment that now chains at r.next, dropping
// stale duplicates.
func (r *reassembler) drain(out []chunk) []chunk {
	progress := true
	for progress {
		progress = false
		for i, s := range r.pending {
			if s.seq == r.next {
				out = append(out, chunk{time: s.time, payload: s.payload})
				r.next = s.seq + s.wireLen
				r.pending = append(r.pending[:i], r.pending[i+1:]...)
				progress = true
				break
			}
			if seqLess(s.seq, r.next) {
				r.pending = append(r.pending[:i], r.pending[i+1:]...)
				progress = true
				break
			}
		}
	}
	return out
}

// FlowHandler receives flow-table events.
type FlowHandler interface {
	// FlowEstablished fires when the three-way handshake completes (or on
	// the first data packet of a flow whose handshake predates the trace).
	FlowEstablished(f *Flow)
	// Data delivers reassembled payload for one direction in order. gap
	// marks a sequence discontinuity before this chunk (uncaptured bytes).
	Data(f *Flow, dir Dir, time int64, payload []byte, gap bool)
	// FlowClosed fires on FIN/RST or table flush.
	FlowClosed(f *Flow)
}

// FlowTable demultiplexes packets into flows.
type FlowTable struct {
	flows   map[FourTuple]*Flow
	handler FlowHandler
	// Established tracks whether FlowEstablished fired.
	established map[*Flow]bool
}

// NewFlowTable creates a table delivering events to handler.
func NewFlowTable(handler FlowHandler) *FlowTable {
	return &FlowTable{
		flows:       make(map[FourTuple]*Flow),
		handler:     handler,
		established: make(map[*Flow]bool),
	}
}

// NumActive returns the number of live flows.
func (ft *FlowTable) NumActive() int { return len(ft.flows) }

// Add processes one packet.
func (ft *FlowTable) Add(p *Packet) {
	key := p.Tuple()
	f, dir := ft.lookup(key)
	if f == nil {
		// New flow. The SYN sender is the client; a mid-stream packet makes
		// the lower port the server (heuristic for truncated traces).
		f = &Flow{FirstTime: p.Time}
		if p.HasFlag(FlagSYN) && !p.HasFlag(FlagACK) {
			f.ClientIP, f.ClientPort = p.SrcIP, p.SrcPort
			f.ServerIP, f.ServerPort = p.DstIP, p.DstPort
			f.SYNTime = p.Time
		} else if p.DstPort < p.SrcPort {
			f.ClientIP, f.ClientPort = p.SrcIP, p.SrcPort
			f.ServerIP, f.ServerPort = p.DstIP, p.DstPort
		} else {
			f.ClientIP, f.ClientPort = p.DstIP, p.DstPort
			f.ServerIP, f.ServerPort = p.SrcIP, p.SrcPort
		}
		f.reasm[0] = &reassembler{}
		f.reasm[1] = &reassembler{}
		ft.flows[key] = f
		ft.flows[key.Reverse()] = f
		dir = ft.dirOf(f, p)
	}
	f.LastTime = p.Time
	if p.HasFlag(FlagSYN) && p.HasFlag(FlagACK) && f.SYNACKTime == 0 {
		f.SYNACKTime = p.Time
	}
	if !ft.established[f] {
		handshakeDone := f.SYNTime != 0 && f.SYNACKTime != 0
		midStream := f.SYNTime == 0 && p.WireLen > 0
		if handshakeDone || midStream {
			ft.established[f] = true
			ft.handler.FlowEstablished(f)
		}
	}
	if p.WireLen > 0 {
		f.WireBytes[dir] += uint64(p.WireLen)
		f.Packets[dir]++
		for _, c := range f.reasm[dir].push(p.Seq, p.Time, p.Payload, p.WireLen) {
			if len(c.payload) > 0 || c.gap {
				ft.handler.Data(f, dir, c.time, c.payload, c.gap)
			}
		}
	} else {
		f.Packets[dir]++
	}
	if p.HasFlag(FlagFIN) || p.HasFlag(FlagRST) {
		ft.close(key, f)
	}
}

func (ft *FlowTable) lookup(key FourTuple) (*Flow, Dir) {
	f, ok := ft.flows[key]
	if !ok {
		return nil, 0
	}
	if f.ClientIP == key.SrcIP && f.ClientPort == key.SrcPort {
		return f, ClientToServer
	}
	return f, ServerToClient
}

func (ft *FlowTable) dirOf(f *Flow, p *Packet) Dir {
	if f.ClientIP == p.SrcIP && f.ClientPort == p.SrcPort {
		return ClientToServer
	}
	return ServerToClient
}

func (ft *FlowTable) close(key FourTuple, f *Flow) {
	delete(ft.flows, key)
	delete(ft.flows, key.Reverse())
	delete(ft.established, f)
	ft.handler.FlowClosed(f)
}

// Flush closes all remaining flows (end of trace).
func (ft *FlowTable) Flush() {
	seen := make(map[*Flow]bool)
	for key, f := range ft.flows {
		if seen[f] {
			continue
		}
		seen[f] = true
		delete(ft.flows, key)
		delete(ft.flows, key.Reverse())
		delete(ft.established, f)
		ft.handler.FlowClosed(f)
	}
}
