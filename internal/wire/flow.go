package wire

import (
	"container/list"
	"sort"
)

// Dir is the direction of a segment within a flow.
type Dir int

// Directions relative to the connection initiator.
const (
	ClientToServer Dir = iota
	ServerToClient
)

// Flow is the per-connection state the flow table maintains: handshake
// timestamps, byte accounting, and in-order payload delivery per direction.
type Flow struct {
	// Client/Server identify the endpoints; the client sent the SYN.
	ClientIP, ServerIP     uint32
	ClientPort, ServerPort uint16
	// SYNTime and SYNACKTime are the TCP handshake timestamps (ns); zero
	// when the handshake was not observed (trace started mid-flow).
	SYNTime, SYNACKTime int64
	// FirstTime/LastTime span the packets seen on the flow.
	FirstTime, LastTime int64
	// WireBytes counts original payload bytes per direction.
	WireBytes [2]uint64
	// Packets counts packets per direction.
	Packets [2]int

	reasm [2]*reassembler
	elem  *list.Element // position in the table's recency list
}

// HandshakeRTT returns the TCP handshake latency in nanoseconds (SYN-ACK −
// SYN), the paper's proxy for network RTT (§8.2). ok is false when either
// timestamp is missing.
func (f *Flow) HandshakeRTT() (ns int64, ok bool) {
	if f.SYNTime == 0 || f.SYNACKTime == 0 || f.SYNACKTime < f.SYNTime {
		return 0, false
	}
	return f.SYNACKTime - f.SYNTime, true
}

// tuple reconstructs the client-to-server four-tuple of the flow.
func (f *Flow) tuple() FourTuple {
	return FourTuple{SrcIP: f.ClientIP, DstIP: f.ServerIP,
		SrcPort: f.ClientPort, DstPort: f.ServerPort}
}

// reassembler delivers captured payload in sequence order, dropping
// duplicates and tolerating reordering. Gaps (bytes never captured, e.g.
// snaplen-truncated bodies or losses beyond the reordering window) are
// reported so the consumer can resynchronize. The pending buffer is bounded:
// maxSegs caps the reordering window (0 means the 64-segment default) and
// maxBytes caps buffered captured payload (0 means unlimited); exceeding
// either forces the earliest pending segment out with a gap marker.
type reassembler struct {
	next         uint32 // next expected sequence number
	started      bool
	pending      []segment
	pendingBytes int // captured payload bytes currently buffered
	maxSegs      int
	maxBytes     int
	stats        *TableStats
	obs          *Metrics
}

type segment struct {
	seq     uint32
	time    int64
	payload []byte
	wireLen uint32
}

// seqLess handles 32-bit sequence wraparound.
func seqLess(a, b uint32) bool { return int32(a-b) < 0 }

// push adds a segment and returns the deliverable chunks in order. A chunk
// with gap=true signals missing bytes before it.
type chunk struct {
	time    int64
	payload []byte
	gap     bool
}

func (r *reassembler) push(seq uint32, t int64, payload []byte, wireLen uint32) []chunk {
	if wireLen == 0 {
		return nil
	}
	if !r.started {
		r.started = true
		r.next = seq
	}
	if seqLess(seq, r.next) {
		// Retransmission overlapping already-delivered data; drop the
		// delivered part, keep any new suffix.
		if !seqLess(r.next, seq+wireLen) {
			return nil
		}
		// Trim the delivered prefix.
		skip := r.next - seq
		if uint32(len(payload)) > skip {
			payload = payload[skip:]
		} else {
			payload = nil
		}
		seq = r.next
		wireLen -= skip
		if r.stats != nil {
			r.stats.TrimmedSegments++
		}
		if r.obs != nil {
			r.obs.TrimmedSegments.Inc()
		}
	}
	r.pending = append(r.pending, segment{seq: seq, time: t, payload: payload, wireLen: wireLen})
	r.pendingBytes += len(payload)
	sort.Slice(r.pending, func(i, j int) bool { return seqLess(r.pending[i].seq, r.pending[j].seq) })

	var out []chunk
	out = r.drain(out)
	// If pending segments exceed the reordering window or the buffered-byte
	// cap, declare a gap and resynchronize at the earliest pending segment.
	window := r.maxSegs
	if window == 0 {
		window = defaultReorderWindow
	}
	for len(r.pending) > window || (r.maxBytes > 0 && r.pendingBytes > r.maxBytes) {
		s := r.pending[0]
		out = append(out, chunk{time: s.time, payload: s.payload, gap: true})
		r.next = s.seq + s.wireLen
		r.pending = r.pending[1:]
		r.pendingBytes -= len(s.payload)
		out = r.drain(out)
	}
	return out
}

// drain delivers every pending segment that now chains at r.next, trimming
// partial overlaps and dropping stale duplicates.
func (r *reassembler) drain(out []chunk) []chunk {
	progress := true
	for progress {
		progress = false
		for i, s := range r.pending {
			if s.seq == r.next {
				out = append(out, chunk{time: s.time, payload: s.payload})
				r.next = s.seq + s.wireLen
				r.pending = append(r.pending[:i], r.pending[i+1:]...)
				r.pendingBytes -= len(s.payload)
				progress = true
				break
			}
			if seqLess(s.seq, r.next) {
				r.pendingBytes -= len(s.payload)
				// A pending segment overlapping delivered data partially:
				// deliver the undelivered suffix instead of losing it.
				if seqLess(r.next, s.seq+s.wireLen) {
					skip := r.next - s.seq
					var pay []byte
					if uint32(len(s.payload)) > skip {
						pay = s.payload[skip:]
					}
					out = append(out, chunk{time: s.time, payload: pay})
					r.next = s.seq + s.wireLen
					if r.stats != nil {
						r.stats.TrimmedSegments++
					}
					if r.obs != nil {
						r.obs.TrimmedSegments.Inc()
					}
				}
				r.pending = append(r.pending[:i], r.pending[i+1:]...)
				progress = true
				break
			}
		}
	}
	return out
}

// FlowHandler receives flow-table events.
type FlowHandler interface {
	// FlowEstablished fires when the three-way handshake completes (or on
	// the first data packet of a flow whose handshake predates the trace).
	FlowEstablished(f *Flow)
	// Data delivers reassembled payload for one direction in order. gap
	// marks a sequence discontinuity before this chunk (uncaptured bytes).
	Data(f *Flow, dir Dir, time int64, payload []byte, gap bool)
	// FlowClosed fires on FIN/RST, eviction, or table flush.
	FlowClosed(f *Flow)
}

// FlowTable demultiplexes packets into flows. With a non-zero Limits it is
// bounded-memory: idle flows are evicted on a packet-timestamp clock and the
// live-flow count never exceeds the configured cap.
type FlowTable struct {
	flows   map[FourTuple]*Flow
	handler FlowHandler
	// Established tracks whether FlowEstablished fired.
	established map[*Flow]bool
	limits      Limits
	// recency orders live flows by last activity, oldest at the front.
	recency *list.List
	stats   TableStats
	// clock is the high-water packet timestamp, so isolated out-of-order
	// packets cannot regress the eviction clock. A corrupted timestamp far
	// in the future would poison it permanently — every later packet would
	// look idle — so a sustained run of packets all older than the idle
	// deadline (legit stragglers are isolated, clockResyncRun in a row are
	// not) resyncs the clock down to the run's maximum.
	clock     int64
	staleRun  int
	staleHigh int64
	obs       *Metrics
}

// clockResyncRun is the number of consecutive sub-deadline packets that
// convince the table its clock was poisoned by a corrupt timestamp.
const clockResyncRun = 64

// NewFlowTable creates an unbounded table delivering events to handler
// (legacy behavior, equivalent to NewFlowTableLimits with a zero Limits).
func NewFlowTable(handler FlowHandler) *FlowTable {
	return NewFlowTableLimits(handler, Limits{})
}

// NewFlowTableLimits creates a table bounded by lim.
func NewFlowTableLimits(handler FlowHandler, lim Limits) *FlowTable {
	return &FlowTable{
		flows:       make(map[FourTuple]*Flow),
		handler:     handler,
		established: make(map[*Flow]bool),
		limits:      lim,
		recency:     list.New(),
		obs:         NewMetrics(nil),
	}
}

// SetObs attaches live instrumentation; nil restores the no-op default.
// Reassemblers capture the handle at flow creation, so the handles of flows
// already live (e.g. restored from a snapshot) are rewritten here too.
func (ft *FlowTable) SetObs(m *Metrics) {
	if m == nil {
		m = NewMetrics(nil)
	}
	ft.obs = m
	for e := ft.recency.Front(); e != nil; e = e.Next() {
		f := e.Value.(*Flow)
		f.reasm[0].obs = m
		f.reasm[1].obs = m
	}
}

// NumActive returns the number of live flows.
func (ft *FlowTable) NumActive() int { return ft.recency.Len() }

// Stats returns the degradation counters accumulated so far.
func (ft *FlowTable) Stats() TableStats { return ft.stats }

// Add processes one packet.
func (ft *FlowTable) Add(p *Packet) {
	ft.advanceClock(p.Time)
	ft.evictIdle()
	key := p.Tuple()
	f, dir := ft.lookup(key)
	if f == nil {
		ft.evictForCap()
		// New flow. The SYN sender is the client; a mid-stream packet makes
		// the lower port the server (heuristic for truncated traces).
		f = &Flow{FirstTime: p.Time}
		if p.HasFlag(FlagSYN) && !p.HasFlag(FlagACK) {
			f.ClientIP, f.ClientPort = p.SrcIP, p.SrcPort
			f.ServerIP, f.ServerPort = p.DstIP, p.DstPort
			f.SYNTime = p.Time
		} else if p.DstPort < p.SrcPort {
			f.ClientIP, f.ClientPort = p.SrcIP, p.SrcPort
			f.ServerIP, f.ServerPort = p.DstIP, p.DstPort
		} else {
			f.ClientIP, f.ClientPort = p.DstIP, p.DstPort
			f.ServerIP, f.ServerPort = p.SrcIP, p.SrcPort
		}
		f.reasm[0] = ft.newReassembler()
		f.reasm[1] = ft.newReassembler()
		ft.flows[key] = f
		ft.flows[key.Reverse()] = f
		f.elem = ft.recency.PushBack(f)
		dir = ft.dirOf(f, p)
	} else if p.HasFlag(FlagSYN) && !p.HasFlag(FlagACK) && dir == ClientToServer && f.SYNACKTime == 0 {
		// SYN retransmission before the handshake completed: the SYN-ACK
		// will answer this SYN, so the RTT clock restarts here. Once the
		// handshake is done a stray duplicate SYN must not move it.
		f.SYNTime = p.Time
	}
	f.LastTime = p.Time
	ft.recency.MoveToBack(f.elem)
	if p.HasFlag(FlagSYN) && p.HasFlag(FlagACK) && f.SYNACKTime == 0 {
		f.SYNACKTime = p.Time
	}
	if !ft.established[f] {
		handshakeDone := f.SYNTime != 0 && f.SYNACKTime != 0
		midStream := f.SYNTime == 0 && p.WireLen > 0
		if handshakeDone || midStream {
			ft.established[f] = true
			ft.handler.FlowEstablished(f)
		}
	}
	if p.WireLen > 0 {
		f.WireBytes[dir] += uint64(p.WireLen)
		f.Packets[dir]++
		for _, c := range f.reasm[dir].push(p.Seq, p.Time, p.Payload, p.WireLen) {
			if len(c.payload) > 0 || c.gap {
				if c.gap {
					ft.stats.Gaps++
					ft.obs.Gaps.Inc()
				}
				ft.handler.Data(f, dir, c.time, c.payload, c.gap)
			}
		}
	} else {
		f.Packets[dir]++
	}
	if p.HasFlag(FlagFIN) || p.HasFlag(FlagRST) {
		ft.close(key, f)
	}
	ft.obs.LiveFlows.Set(int64(ft.recency.Len()))
}

func (ft *FlowTable) newReassembler() *reassembler {
	return &reassembler{
		maxSegs:  ft.limits.MaxBufferedSegments,
		maxBytes: ft.limits.MaxBufferedBytes,
		stats:    &ft.stats,
		obs:      ft.obs,
	}
}

// advanceClock moves the eviction clock to the high-water timestamp, with
// outlier recovery: when clockResyncRun consecutive packets all predate the
// idle deadline, the clock was poisoned by a corrupt future timestamp and is
// resynced down to the run's maximum.
func (ft *FlowTable) advanceClock(t int64) {
	if t > ft.clock {
		ft.clock = t
		ft.staleRun, ft.staleHigh = 0, 0
		return
	}
	if ft.limits.IdleTimeout <= 0 || t >= ft.clock-int64(ft.limits.IdleTimeout) {
		// Mild reordering is not evidence of a poisoned clock.
		ft.staleRun, ft.staleHigh = 0, 0
		return
	}
	ft.staleRun++
	if t > ft.staleHigh {
		ft.staleHigh = t
	}
	if ft.staleRun >= clockResyncRun {
		ft.clock = ft.staleHigh
		ft.stats.ClockResyncs++
		ft.obs.ClockResyncs.Inc()
		ft.staleRun, ft.staleHigh = 0, 0
	}
}

// evictIdle force-closes flows whose last activity predates the idle
// timeout, oldest first.
func (ft *FlowTable) evictIdle() {
	if ft.limits.IdleTimeout <= 0 {
		return
	}
	deadline := ft.clock - int64(ft.limits.IdleTimeout)
	for e := ft.recency.Front(); e != nil; e = ft.recency.Front() {
		f := e.Value.(*Flow)
		if f.LastTime >= deadline {
			return
		}
		ft.stats.EvictedIdle++
		ft.obs.EvictedIdle.Inc()
		ft.close(f.tuple(), f)
	}
}

// evictForCap makes room for one new flow when the table is at MaxFlows.
func (ft *FlowTable) evictForCap() {
	if ft.limits.MaxFlows <= 0 {
		return
	}
	for ft.recency.Len() >= ft.limits.MaxFlows {
		e := ft.recency.Front()
		if e == nil {
			return
		}
		f := e.Value.(*Flow)
		ft.stats.EvictedCap++
		ft.obs.EvictedCap.Inc()
		ft.close(f.tuple(), f)
	}
}

func (ft *FlowTable) lookup(key FourTuple) (*Flow, Dir) {
	f, ok := ft.flows[key]
	if !ok {
		return nil, 0
	}
	if f.ClientIP == key.SrcIP && f.ClientPort == key.SrcPort {
		return f, ClientToServer
	}
	return f, ServerToClient
}

func (ft *FlowTable) dirOf(f *Flow, p *Packet) Dir {
	if f.ClientIP == p.SrcIP && f.ClientPort == p.SrcPort {
		return ClientToServer
	}
	return ServerToClient
}

func (ft *FlowTable) close(key FourTuple, f *Flow) {
	delete(ft.flows, key)
	delete(ft.flows, key.Reverse())
	delete(ft.established, f)
	if f.elem != nil {
		ft.recency.Remove(f.elem)
		f.elem = nil
	}
	ft.handler.FlowClosed(f)
}

// Flush closes all remaining flows (end of trace).
func (ft *FlowTable) Flush() {
	for e := ft.recency.Front(); e != nil; e = ft.recency.Front() {
		f := e.Value.(*Flow)
		ft.close(f.tuple(), f)
	}
}
