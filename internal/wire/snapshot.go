package wire

// Snapshot support: a FlowTable's complete mutable state — live flows in
// recency order, per-direction reassembly buffers, eviction clock, and
// degradation counters — can be captured into plain exported structs and
// rebuilt later into an equivalent table. A restored table continues exactly
// where the snapshot was taken: feeding both the original and the restored
// table the same remaining packets produces identical handler events and
// stats. This is the substrate checkpoint/resume (internal/runz) builds on.
//
// All snapshot types hold only exported scalar/slice fields so encoding/gob
// can serialize them without custom marshalers.

// SegmentSnapshot is one pending (out-of-order) reassembly segment.
type SegmentSnapshot struct {
	Seq     uint32
	Time    int64
	Payload []byte
	WireLen uint32
}

// ReassemblerSnapshot is one direction's reassembly state.
type ReassemblerSnapshot struct {
	Next    uint32
	Started bool
	Pending []SegmentSnapshot
}

// FlowSnapshot is one live flow's state, including whether FlowEstablished
// has fired (so restore does not fire it again).
type FlowSnapshot struct {
	ClientIP, ServerIP     uint32
	ClientPort, ServerPort uint16
	SYNTime, SYNACKTime    int64
	FirstTime, LastTime    int64
	WireBytes              [2]uint64
	Packets                [2]int
	Established            bool
	Reasm                  [2]ReassemblerSnapshot
}

// TableSnapshot is a FlowTable's complete mutable state. Flows are ordered by
// recency (least recently active first), preserving LRU eviction order.
type TableSnapshot struct {
	Stats     TableStats
	Clock     int64
	StaleRun  int
	StaleHigh int64
	Flows     []FlowSnapshot
}

// Snapshot captures the table's state. The returned flow pointers parallel
// Snapshot.Flows (same order), letting callers that key private state by
// *Flow — the analyzer's per-connection parser does — translate pointers to
// snapshot indices. The snapshot deep-copies all buffered payload, so the
// table may keep running while the snapshot is serialized.
func (ft *FlowTable) Snapshot() (*TableSnapshot, []*Flow) {
	snap := &TableSnapshot{
		Stats:     ft.stats,
		Clock:     ft.clock,
		StaleRun:  ft.staleRun,
		StaleHigh: ft.staleHigh,
	}
	var flows []*Flow
	for e := ft.recency.Front(); e != nil; e = e.Next() {
		f := e.Value.(*Flow)
		fs := FlowSnapshot{
			ClientIP: f.ClientIP, ServerIP: f.ServerIP,
			ClientPort: f.ClientPort, ServerPort: f.ServerPort,
			SYNTime: f.SYNTime, SYNACKTime: f.SYNACKTime,
			FirstTime: f.FirstTime, LastTime: f.LastTime,
			WireBytes:   f.WireBytes,
			Packets:     f.Packets,
			Established: ft.established[f],
		}
		for d := 0; d < 2; d++ {
			fs.Reasm[d] = snapshotReassembler(f.reasm[d])
		}
		snap.Flows = append(snap.Flows, fs)
		flows = append(flows, f)
	}
	return snap, flows
}

func snapshotReassembler(r *reassembler) ReassemblerSnapshot {
	rs := ReassemblerSnapshot{Next: r.next, Started: r.started}
	for _, s := range r.pending {
		rs.Pending = append(rs.Pending, SegmentSnapshot{
			Seq:     s.seq,
			Time:    s.time,
			Payload: append([]byte(nil), s.payload...),
			WireLen: s.wireLen,
		})
	}
	return rs
}

// RestoreFlowTable rebuilds a table from a snapshot, bounded by lim and
// delivering future events to handler. No handler callbacks fire during
// restore — flows marked Established in the snapshot already announced
// themselves before the snapshot was taken; the caller is responsible for
// restoring whatever per-flow state it keeps, using the returned flow
// pointers, which parallel snap.Flows.
func RestoreFlowTable(handler FlowHandler, lim Limits, snap *TableSnapshot) (*FlowTable, []*Flow) {
	ft := NewFlowTableLimits(handler, lim)
	ft.stats = snap.Stats
	ft.clock = snap.Clock
	ft.staleRun = snap.StaleRun
	ft.staleHigh = snap.StaleHigh
	flows := make([]*Flow, 0, len(snap.Flows))
	for _, fs := range snap.Flows {
		f := &Flow{
			ClientIP: fs.ClientIP, ServerIP: fs.ServerIP,
			ClientPort: fs.ClientPort, ServerPort: fs.ServerPort,
			SYNTime: fs.SYNTime, SYNACKTime: fs.SYNACKTime,
			FirstTime: fs.FirstTime, LastTime: fs.LastTime,
			WireBytes: fs.WireBytes,
			Packets:   fs.Packets,
		}
		for d := 0; d < 2; d++ {
			f.reasm[d] = restoreReassembler(ft, fs.Reasm[d])
		}
		key := f.tuple()
		ft.flows[key] = f
		ft.flows[key.Reverse()] = f
		f.elem = ft.recency.PushBack(f)
		if fs.Established {
			ft.established[f] = true
		}
		flows = append(flows, f)
	}
	return ft, flows
}

func restoreReassembler(ft *FlowTable, rs ReassemblerSnapshot) *reassembler {
	r := ft.newReassembler()
	r.next = rs.Next
	r.started = rs.Started
	for _, s := range rs.Pending {
		r.pending = append(r.pending, segment{
			seq:     s.Seq,
			time:    s.Time,
			payload: append([]byte(nil), s.Payload...),
			wireLen: s.WireLen,
		})
		r.pendingBytes += len(s.Payload)
	}
	return r
}
