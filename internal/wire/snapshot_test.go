package wire

import (
	"bytes"
	"fmt"
	"io"
	"sort"
	"testing"
)

// genInterleaved emits n HTTP connections with staggered lifetimes and
// returns the packets in capture-time order, so a mid-stream split leaves
// several flows open with reassembly state in flight.
func genInterleaved(t *testing.T, n int) []*Packet {
	t.Helper()
	var pkts []*Packet
	out := func(p *Packet) error { pkts = append(pkts, p); return nil }
	for c := 0; c < n; c++ {
		em := NewConnEmitter(out, 0x0A000001+uint32(c%4), uint16(6000+c), 0x0B000001+uint32(c%3), 80, 20e6, uint32(1000*c+7))
		start := int64(c+1) * 1e9
		est, err := em.Open(start)
		if err != nil {
			t.Fatal(err)
		}
		for q := 0; q < 1+c%3; q++ {
			reqT := est + int64(q)*100e6
			hdr := fmt.Sprintf("GET /x%d-%d HTTP/1.1\r\nHost: h%d.example\r\n\r\n", c, q, c%5)
			if err := em.Request(reqT, []byte(hdr)); err != nil {
				t.Fatal(err)
			}
			if err := em.Response(reqT+40e6, []byte("HTTP/1.1 200 OK\r\nContent-Length: 64\r\n\r\n"), 64); err != nil {
				t.Fatal(err)
			}
		}
		if err := em.Close(start + int64(4+c%5)*1e9); err != nil {
			t.Fatal(err)
		}
	}
	sort.SliceStable(pkts, func(i, j int) bool { return pkts[i].Time < pkts[j].Time })
	return pkts
}

// TestFlowTableSnapshotRestoreContinuity is the invariant checkpointing
// rests on: snapshot a table mid-stream, restore it, feed both the original
// and the restored table the remaining packets — every event delivered and
// every counter incremented after the split must be identical.
func TestFlowTableSnapshotRestoreContinuity(t *testing.T) {
	pkts := genInterleaved(t, 9)
	split := len(pkts) / 2

	h1 := newCollectingHandler()
	ft1 := NewFlowTable(h1)
	for _, p := range pkts[:split] {
		ft1.Add(p)
	}

	snap, _ := ft1.Snapshot()
	if ft1.NumActive() == 0 {
		t.Fatal("bad fixture: no flows open at the split")
	}
	h2 := newCollectingHandler()
	ft2, flows := RestoreFlowTable(h2, Limits{}, snap)
	if len(flows) != len(snap.Flows) {
		t.Fatalf("restore returned %d flows for %d snapshots", len(flows), len(snap.Flows))
	}
	if ft2.NumActive() != ft1.NumActive() {
		t.Fatalf("restored NumActive = %d, original %d", ft2.NumActive(), ft1.NumActive())
	}
	if h2.established != 0 || h2.closed != 0 || len(h2.data) != 0 {
		t.Fatal("restore must not fire handler callbacks")
	}

	// Mark where the original handler stood at the split.
	estAt, closedAt, gapsAt := h1.established, h1.closed, h1.gaps
	dataAt := map[Dir]int{}
	for d, b := range h1.data {
		dataAt[d] = len(b)
	}

	for _, p := range pkts[split:] {
		ft1.Add(p)
		ft2.Add(p)
	}
	ft1.Flush()
	ft2.Flush()

	if got, want := h2.established, h1.established-estAt; got != want {
		t.Errorf("established after split: restored %d, original %d", got, want)
	}
	if got, want := h2.closed, h1.closed-closedAt; got != want {
		t.Errorf("closed after split: restored %d, original %d", got, want)
	}
	if got, want := h2.gaps, h1.gaps-gapsAt; got != want {
		t.Errorf("gaps after split: restored %d, original %d", got, want)
	}
	for d := range h1.data {
		if !bytes.Equal(h2.data[d], h1.data[d][dataAt[d]:]) {
			t.Errorf("dir %d: restored table delivered different bytes after the split", d)
		}
	}
	if ft1.Stats() != ft2.Stats() {
		t.Errorf("final stats diverged: original %+v restored %+v", ft1.Stats(), ft2.Stats())
	}
}

// TestFlowTableSnapshotPreservesLRU pins the eviction order across a
// snapshot: under a binding flow cap, the restored table must evict the same
// flows the original would, so bounded runs stay deterministic across resume.
func TestFlowTableSnapshotPreservesLRU(t *testing.T) {
	pkts := genInterleaved(t, 8)
	split := len(pkts) / 2
	lim := Limits{MaxFlows: 3}

	h1 := newCollectingHandler()
	ft1 := NewFlowTableLimits(h1, lim)
	for _, p := range pkts[:split] {
		ft1.Add(p)
	}
	snap, _ := ft1.Snapshot()
	h2 := newCollectingHandler()
	ft2, _ := RestoreFlowTable(h2, lim, snap)

	for _, p := range pkts[split:] {
		ft1.Add(p)
		ft2.Add(p)
	}
	ft1.Flush()
	ft2.Flush()
	if ft1.Stats() != ft2.Stats() {
		t.Errorf("bounded stats diverged: original %+v restored %+v", ft1.Stats(), ft2.Stats())
	}
	if ft1.Stats().EvictedCap == snap.Stats.EvictedCap {
		t.Fatalf("bad fixture: no cap evictions after the split (cap=%d)", lim.MaxFlows)
	}
}

// TestReaderStateResume checks the checkpoint fast-skip path: a fresh reader
// resumed from a mid-trace State must deliver exactly the remaining records
// and end with the same cumulative stats, including across lenient resyncs.
func TestReaderStateResume(t *testing.T) {
	data, offsets := buildTrace(t, 40)
	// Corrupt one record before and one after the split point so both the
	// saved stats and the post-resume decode exercise the resync path.
	data[offsets[5]+3] ^= 0xFF
	data[offsets[30]+3] ^= 0xFF
	opt := ReaderOptions{Lenient: true}

	full, err := NewReaderOptions(bytes.NewReader(data), opt)
	if err != nil {
		t.Fatal(err)
	}
	var fullPkts []*Packet
	for {
		p, err := full.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		fullPkts = append(fullPkts, p)
	}

	const half = 15
	r1, err := NewReaderOptions(bytes.NewReader(data), opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < half; i++ {
		if _, err := r1.Read(); err != nil {
			t.Fatal(err)
		}
	}
	st := r1.State()
	if st.Offset <= int64(len(magic)) {
		t.Fatalf("offset %d did not advance past the header", st.Offset)
	}

	r2, err := NewReaderOptions(bytes.NewReader(data), opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := r2.Resume(st); err != nil {
		t.Fatal(err)
	}
	var rest []*Packet
	for {
		p, err := r2.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		rest = append(rest, p)
	}
	if len(rest) != len(fullPkts)-half {
		t.Fatalf("resumed reader delivered %d records, want %d", len(rest), len(fullPkts)-half)
	}
	for i, p := range rest {
		want := fullPkts[half+i]
		if p.Time != want.Time || p.Seq != want.Seq || !bytes.Equal(p.Payload, want.Payload) {
			t.Fatalf("record %d after resume differs: got %+v want %+v", i, p, want)
		}
	}
	if r2.Stats() != full.Stats() {
		t.Errorf("final stats diverged: resumed %+v full %+v", r2.Stats(), full.Stats())
	}
}

func TestReaderResumeRejectsConsumedReader(t *testing.T) {
	data, _ := buildTrace(t, 5)
	r1, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	st := r1.State()
	if _, err := r1.Read(); err != nil {
		t.Fatal(err)
	}
	if err := r1.Resume(st); err == nil {
		t.Error("Resume on a consumed reader must fail")
	}
	r2, _ := NewReader(bytes.NewReader(data))
	if err := r2.Resume(ReaderState{Offset: 1}); err == nil {
		t.Error("Resume to an offset inside the file header must fail")
	}
	r3, _ := NewReader(bytes.NewReader(data))
	if err := r3.Resume(ReaderState{Offset: int64(len(data)) + 100}); err == nil {
		t.Error("Resume past end of input must fail")
	}
}
