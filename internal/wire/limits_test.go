package wire

import (
	"testing"
	"time"
)

// dataPkt builds a one-sided data packet for a distinct flow id.
func dataPkt(id uint32, t int64, payload string) *Packet {
	return &Packet{Time: t, SrcIP: 100 + id, DstIP: 1, SrcPort: 40000, DstPort: 80,
		Flags: FlagACK, Seq: 1, WireLen: uint32(len(payload)), Payload: []byte(payload)}
}

func TestFlowTableIdleEviction(t *testing.T) {
	h := newCollectingHandler()
	ft := NewFlowTableLimits(h, Limits{IdleTimeout: time.Second})
	ft.Add(dataPkt(1, 1e9, "x"))
	ft.Add(dataPkt(2, 1.5e9, "x"))
	if ft.NumActive() != 2 {
		t.Fatalf("NumActive = %d, want 2", ft.NumActive())
	}
	// Flow 1 last active at 1e9; a packet at 3e9 pushes the clock past its
	// deadline. Flow 2 (1.5e9) is also stale by then.
	ft.Add(dataPkt(3, 3e9, "x"))
	if got := ft.Stats().EvictedIdle; got != 2 {
		t.Errorf("EvictedIdle = %d, want 2", got)
	}
	if ft.NumActive() != 1 {
		t.Errorf("NumActive = %d, want 1 (only the fresh flow)", ft.NumActive())
	}
	if h.closed != 2 {
		t.Errorf("closed = %d, want 2 (evictions must fire FlowClosed)", h.closed)
	}
	// Out-of-order stragglers must not regress the eviction clock.
	ft.Add(dataPkt(4, 2e9, "x"))
	if ft.NumActive() != 2 {
		t.Errorf("NumActive = %d after straggler, want 2", ft.NumActive())
	}
}

func TestFlowTableCapEviction(t *testing.T) {
	h := newCollectingHandler()
	ft := NewFlowTableLimits(h, Limits{MaxFlows: 4})
	for i := uint32(0); i < 10; i++ {
		ft.Add(dataPkt(i, int64(i+1)*1e6, "x"))
		if ft.NumActive() > 4 {
			t.Fatalf("NumActive = %d exceeds cap 4", ft.NumActive())
		}
	}
	if got := ft.Stats().EvictedCap; got != 6 {
		t.Errorf("EvictedCap = %d, want 6", got)
	}
	if ft.NumActive() != 4 {
		t.Errorf("NumActive = %d, want 4", ft.NumActive())
	}
	// The survivors must be the most recently active flows (6..9), so a
	// packet for flow 9 must not create a new flow.
	before := ft.NumActive()
	ft.Add(dataPkt(9, 20e6, "y"))
	if ft.NumActive() != before {
		t.Errorf("recent flow was evicted instead of the oldest")
	}
}

func TestFlowTableEvictionFlushesPending(t *testing.T) {
	// An evicted flow must go through the normal close path so downstream
	// consumers (the HTTP pairer) flush their per-flow state.
	h := newCollectingHandler()
	ft := NewFlowTableLimits(h, Limits{MaxFlows: 1})
	ft.Add(dataPkt(1, 1e6, "HELLO"))
	ft.Add(dataPkt(2, 2e6, "WORLD"))
	if h.closed != 1 {
		t.Fatalf("closed = %d, want 1", h.closed)
	}
	ft.Flush()
	if h.closed != 2 {
		t.Fatalf("closed = %d after flush, want 2", h.closed)
	}
	if ft.NumActive() != 0 {
		t.Errorf("NumActive = %d after flush", ft.NumActive())
	}
}

func TestReassemblerByteCapForcesGap(t *testing.T) {
	h := newCollectingHandler()
	ft := NewFlowTableLimits(h, Limits{MaxBufferedBytes: 1000})
	// First segment anchors the stream; then out-of-order segments that
	// never chain pile up until the byte cap forces gap delivery.
	ft.Add(&Packet{Time: 1, SrcIP: 9, DstIP: 1, SrcPort: 40000, DstPort: 80,
		Flags: FlagACK, Seq: 0, WireLen: 10, Payload: make([]byte, 10)})
	for i := 0; i < 3; i++ {
		seq := uint32(5000 + i*600) // hole at [10,5000)
		ft.Add(&Packet{Time: int64(i + 2), SrcIP: 9, DstIP: 1, SrcPort: 40000, DstPort: 80,
			Flags: FlagACK, Seq: seq, WireLen: 500, Payload: make([]byte, 500)})
	}
	if h.gaps == 0 {
		t.Error("byte cap did not force gap delivery")
	}
	if got := ft.Stats().Gaps; got != h.gaps {
		t.Errorf("Stats().Gaps = %d, handler saw %d", got, h.gaps)
	}
	f, _ := ft.lookup(FourTuple{SrcIP: 9, DstIP: 1, SrcPort: 40000, DstPort: 80})
	if f == nil {
		t.Fatal("flow missing")
	}
	if got := f.reasm[ClientToServer].pendingBytes; got > 1000 {
		t.Errorf("pendingBytes = %d exceeds cap 1000", got)
	}
}

// TestSYNRetransmissionRefreshesHandshake is the regression test for the
// repeated-SYN fix: a retransmitted SYN restarts the RTT clock while the
// handshake is incomplete, and a stray duplicate SYN after the SYN-ACK must
// not move it (that would make SYNACKTime < SYNTime and void the sample).
func TestSYNRetransmissionRefreshesHandshake(t *testing.T) {
	h := newCollectingHandler()
	ft := NewFlowTable(h)
	syn := func(ts int64) *Packet {
		return &Packet{Time: ts, SrcIP: 1, DstIP: 2, SrcPort: 5000, DstPort: 80, Flags: FlagSYN, Seq: 99}
	}
	synack := func(ts int64) *Packet {
		return &Packet{Time: ts, SrcIP: 2, DstIP: 1, SrcPort: 80, DstPort: 5000, Flags: FlagSYN | FlagACK, Seq: 999}
	}

	// SYN lost upstream of the server: client retransmits 3s later, and the
	// SYN-ACK answers the retransmission.
	ft.Add(syn(1e9))
	ft.Add(syn(4e9))
	ft.Add(synack(4e9 + 20e6))
	f, _ := ft.lookup(FourTuple{SrcIP: 1, DstIP: 2, SrcPort: 5000, DstPort: 80})
	rtt, ok := f.HandshakeRTT()
	if !ok || rtt != 20e6 {
		t.Errorf("RTT after SYN retransmission = %d ok=%v, want 20ms (measured from the last SYN)", rtt, ok)
	}

	// Completed handshake: a late duplicate SYN (network reordering) must
	// not reset SYNTime past SYNACKTime.
	h2 := newCollectingHandler()
	ft2 := NewFlowTable(h2)
	ft2.Add(syn(1e9))
	ft2.Add(synack(1e9 + 20e6))
	ft2.Add(syn(1e9 + 30e6))
	f2, _ := ft2.lookup(FourTuple{SrcIP: 1, DstIP: 2, SrcPort: 5000, DstPort: 80})
	rtt2, ok2 := f2.HandshakeRTT()
	if !ok2 || rtt2 != 20e6 {
		t.Errorf("RTT after duplicate SYN = %d ok=%v, want 20ms preserved", rtt2, ok2)
	}
}

func TestFlowTableUnlimitedByDefault(t *testing.T) {
	// The legacy constructor must impose no bounds: thousands of open flows
	// spread over a long timespan all stay live.
	h := newCollectingHandler()
	ft := NewFlowTable(h)
	for i := uint32(0); i < 5000; i++ {
		ft.Add(dataPkt(i, int64(i+1)*60e9, "x")) // one flow per minute
	}
	if ft.NumActive() != 5000 {
		t.Errorf("NumActive = %d, want 5000 (no eviction without limits)", ft.NumActive())
	}
	if st := ft.Stats(); st.EvictedIdle+st.EvictedCap != 0 {
		t.Errorf("unexpected evictions: %+v", st)
	}
}

// TestFlowTableClockPoisonRecovery pins the outlier-resistant eviction
// clock: a single corrupt timestamp far in the future must not permanently
// convince the table that every later flow is idle. After clockResyncRun
// consecutive packets older than the idle deadline, the clock resyncs down
// and normal flows survive again.
func TestFlowTableClockPoisonRecovery(t *testing.T) {
	h := newCollectingHandler()
	ft := NewFlowTableLimits(h, Limits{IdleTimeout: time.Second})
	ft.Add(dataPkt(1, 1e9, "x"))
	// Poisoned packet: ~78 hours in the future (a bit-flipped timestamp).
	ft.Add(dataPkt(2, 1e9+280000e9, "x"))
	// Real traffic resumes at sane times. During the poisoned window each
	// packet's flow looks idle and is evicted by the next packet.
	for i := uint32(0); i < 2*clockResyncRun; i++ {
		ft.Add(dataPkt(100+i, 1.1e9+int64(i)*1e6, "x"))
	}
	st := ft.Stats()
	if st.ClockResyncs != 1 {
		t.Fatalf("ClockResyncs = %d, want 1", st.ClockResyncs)
	}
	// Every flow after the resync point must have survived.
	if want := clockResyncRun + 1; ft.NumActive() < want {
		t.Errorf("NumActive = %d after recovery, want >= %d", ft.NumActive(), want)
	}
	// And the meltdown itself stays bounded: at most one eviction per packet
	// inside the poisoned window, not a permanent everything-is-idle state.
	if st.EvictedIdle > clockResyncRun+2 {
		t.Errorf("EvictedIdle = %d, poisoned window was not contained", st.EvictedIdle)
	}
}
