package wire

import (
	"bytes"
	"testing"
)

// pushAll feeds one segment and appends the delivered chunks.
func pushAll(r *reassembler, seq uint32, payload []byte, out *[]chunk) {
	*out = append(*out, r.push(seq, 0, payload, uint32(len(payload)))...)
}

func flatten(chunks []chunk) (data []byte, gaps int) {
	for _, c := range chunks {
		if c.gap {
			gaps++
		}
		data = append(data, c.payload...)
	}
	return data, gaps
}

// TestReassemblerWraparoundAcrossGap drives the gap-declaration path across
// the 32-bit sequence wrap: a hole before the wrap point forces the window to
// overflow while pending sequence numbers straddle 0xFFFFFFFF → 0.
func TestReassemblerWraparoundAcrossGap(t *testing.T) {
	r := &reassembler{maxSegs: 8}
	start := uint32(0xFFFFFF00) // 256 bytes before the wrap
	seg := 64
	msg := make([]byte, 16*seg)
	for i := range msg {
		msg[i] = byte(i)
	}
	var out []chunk
	// Anchor the stream, then withhold segment 1 and push 2..15: ten
	// pending segments overflow the 8-segment window mid-wrap.
	pushAll(r, start, msg[:seg], &out)
	for i := 2; i < 16; i++ {
		pushAll(r, start+uint32(i*seg), msg[i*seg:(i+1)*seg], &out)
	}
	data, gaps := flatten(out)
	if gaps != 1 {
		t.Fatalf("gaps = %d, want exactly 1 (the withheld segment)", gaps)
	}
	// Everything except the withheld segment must arrive, in order.
	want := append(append([]byte(nil), msg[:seg]...), msg[2*seg:]...)
	if !bytes.Equal(data, want) {
		t.Fatalf("delivered %d bytes, want %d; wraparound scrambled the stream", len(data), len(want))
	}
	// next must have wrapped cleanly past zero.
	if wantNext := start + uint32(16*seg); r.next != wantNext {
		t.Errorf("next = %#x, want %#x", r.next, wantNext)
	}
	if seqLess(r.next, start) {
		// sanity: wrapped next compares as *after* the pre-wrap start
		t.Errorf("wrapped next %#x compares before start %#x", r.next, start)
	}
	// The stream continues seamlessly after the wrap.
	tail := []byte("post-wrap")
	pushAll(r, r.next, tail, &out)
	data, _ = flatten(out)
	if !bytes.HasSuffix(data, tail) {
		t.Error("post-wrap segment not delivered in order")
	}
}

// TestReassemblerPartialOverlapRetransmission covers both partial-overlap
// shapes: a retransmission overlapping already-delivered data (trimmed on
// push) and a pending segment that a larger retransmission partially covers
// (trimmed on drain). Neither may lose or duplicate bytes.
func TestReassemblerPartialOverlapRetransmission(t *testing.T) {
	stream := make([]byte, 300)
	for i := range stream {
		stream[i] = byte(i * 7)
	}

	t.Run("overlaps-delivered", func(t *testing.T) {
		var stats TableStats
		r := &reassembler{stats: &stats}
		var out []chunk
		pushAll(r, 0, stream[0:200], &out)
		// Retransmit [150,250): bytes [150,200) were already delivered.
		pushAll(r, 150, stream[150:250], &out)
		data, gaps := flatten(out)
		if gaps != 0 {
			t.Fatalf("gaps = %d", gaps)
		}
		if !bytes.Equal(data, stream[:250]) {
			t.Fatalf("delivered bytes diverge after trimmed retransmission")
		}
		if stats.TrimmedSegments == 0 {
			t.Error("trim not counted")
		}
	})

	t.Run("overlaps-pending", func(t *testing.T) {
		var stats TableStats
		r := &reassembler{stats: &stats}
		var out []chunk
		pushAll(r, 0, stream[0:100], &out)     // delivered, next=100
		pushAll(r, 200, stream[200:300], &out) // pending behind a hole
		// A retransmission [100,250) fills the hole and swallows half of
		// the pending segment; the pending remainder [250,300) must still
		// be delivered, not dropped.
		pushAll(r, 100, stream[100:250], &out)
		data, gaps := flatten(out)
		if gaps != 0 {
			t.Fatalf("gaps = %d", gaps)
		}
		if !bytes.Equal(data, stream) {
			t.Fatalf("delivered %d bytes, want full 300: pending partial overlap lost data", len(data))
		}
		if r.pendingBytes != 0 || len(r.pending) != 0 {
			t.Errorf("pending not drained: %d segs, %d bytes", len(r.pending), r.pendingBytes)
		}
		if stats.TrimmedSegments == 0 {
			t.Error("trim not counted")
		}
	})
}

// TestReassemblerWindowBoundary pins the reordering-window edge: exactly
// maxSegs pending segments buffer without loss, one more forces a gap.
func TestReassemblerWindowBoundary(t *testing.T) {
	r := &reassembler{} // default 64-segment window
	var out []chunk
	pushAll(r, 0, []byte{0}, &out) // anchor, next=1
	// 64 disjoint single-byte segments at even offsets: all pending.
	for i := 0; i < defaultReorderWindow; i++ {
		pushAll(r, uint32(2+2*i), []byte{byte(i)}, &out)
	}
	if _, gaps := flatten(out); gaps != 0 {
		t.Fatalf("gap declared with exactly %d pending segments", defaultReorderWindow)
	}
	if len(r.pending) != defaultReorderWindow {
		t.Fatalf("pending = %d, want %d", len(r.pending), defaultReorderWindow)
	}
	// The 65th non-chaining segment overflows the window.
	pushAll(r, uint32(2+2*defaultReorderWindow), []byte{0xFF}, &out)
	if _, gaps := flatten(out); gaps == 0 {
		t.Error("window overflow did not declare a gap")
	}
	if len(r.pending) > defaultReorderWindow {
		t.Errorf("pending = %d still above window", len(r.pending))
	}
}
