package wire

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// followTracePacket builds a small valid packet for follow tests.
func followTracePacket(t int64, payload []byte) *Packet {
	return &Packet{
		Time: t, SrcIP: 0x0a000001, DstIP: 0x0a000002,
		SrcPort: 40000, DstPort: 80, Flags: FlagACK | FlagPSH,
		Seq: 1, WireLen: uint32(len(payload)), Payload: payload,
	}
}

// encodeTrace serializes header + packets into a byte slice.
func encodeTrace(t *testing.T, pkts ...*Packet) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pkts {
		if err := w.Write(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestFollowRetryableEOF: a clean EOF on a still-growing file returns
// ErrAgain (counted, not silent), and the read succeeds once the rest of the
// record arrives — for both strict and lenient follow readers.
func TestFollowRetryableEOF(t *testing.T) {
	for _, lenient := range []bool{false, true} {
		name := "strict"
		if lenient {
			name = "lenient"
		}
		t.Run(name, func(t *testing.T) {
			full := encodeTrace(t,
				followTracePacket(1000, []byte("GET / HTTP/1.1\r\n")),
				followTracePacket(2000, []byte("HTTP/1.1 200 OK\r\n")),
			)
			dir := t.TempDir()
			path := filepath.Join(dir, "grow.trace")
			// Write the header, the first record, and half of the second.
			cut := len(full) - 10
			if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
				t.Fatal(err)
			}
			f, err := os.Open(path)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			r, err := NewReaderOptions(f, ReaderOptions{Lenient: lenient, Follow: true})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := r.Read(); err != nil {
				t.Fatalf("first record: %v", err)
			}
			// The second record is torn: follow mode must hand back
			// ErrAgain without consuming the partial bytes.
			for i := 0; i < 3; i++ {
				if _, err := r.Read(); !errors.Is(err, ErrAgain) {
					t.Fatalf("read %d on torn record = %v, want ErrAgain", i, err)
				}
			}
			if got := r.Stats().FollowRetries; got != 3 {
				t.Fatalf("FollowRetries = %d, want 3", got)
			}
			// The writer flushes the rest; the very next read completes.
			wf, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := wf.Write(full[cut:]); err != nil {
				t.Fatal(err)
			}
			wf.Close()
			p, err := r.Read()
			if err != nil {
				t.Fatalf("read after growth: %v", err)
			}
			if p.Time != 2000 {
				t.Fatalf("record time = %d, want 2000", p.Time)
			}
			if r.Stats().Records != 2 || r.Stats().TruncatedTail {
				t.Fatalf("stats = %+v, want 2 records and no truncated tail", r.Stats())
			}
			// At the (current) end of the file, EOF is still retryable.
			if _, err := r.Read(); !errors.Is(err, ErrAgain) {
				t.Fatalf("read at end = %v, want ErrAgain", err)
			}
		})
	}
}

// TestFollowOffNoChange: without Follow, a torn tail is a terminal counted
// EOF exactly as before, with zero follow retries.
func TestFollowOffNoChange(t *testing.T) {
	full := encodeTrace(t, followTracePacket(1000, []byte("x")))
	r, err := NewReaderOptions(bytes.NewReader(full[:len(full)-3]), ReaderOptions{Lenient: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Read(); err != io.EOF {
		t.Fatalf("read = %v, want io.EOF", err)
	}
	st := r.Stats()
	if !st.TruncatedTail || st.FollowRetries != 0 {
		t.Fatalf("stats = %+v, want truncated tail and 0 follow retries", st)
	}
}

// TestFollowResyncNotRecounted: in lenient follow mode, a resync that runs
// into the growing end of the file counts as ONE resync event across all the
// ErrAgain polls it spans, not one per poll.
func TestFollowResyncNotRecounted(t *testing.T) {
	good := encodeTrace(t, followTracePacket(1000, []byte("a")), followTracePacket(2000, []byte("b")))
	// Corrupt the first record's flags byte so the head is implausible and
	// truncate mid-scan, leaving garbage followed by a torn tail.
	data := append([]byte(nil), good...)
	data[8+20] = 0xff // unknown flag bits
	cut := len(data) - 5

	var grow bytes.Buffer
	grow.Write(data[:cut])
	r, err := NewReaderOptions(&appendableReader{buf: &grow}, ReaderOptions{Lenient: true, Follow: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := r.Read(); !errors.Is(err, ErrAgain) {
			t.Fatalf("read %d = %v, want ErrAgain", i, err)
		}
	}
	grow.Write(data[cut:])
	// The scan resumes and recovers; where exactly it resynchronizes inside
	// the corrupted bytes is a heuristic, the invariant under test is that
	// the interrupted scan stays ONE counted resync event.
	var recovered int
	for {
		_, err := r.Read()
		if errors.Is(err, ErrAgain) {
			break
		}
		if err != nil {
			t.Fatalf("read after growth: %v", err)
		}
		recovered++
	}
	if recovered == 0 {
		t.Fatal("no record recovered after the corrupted region")
	}
	if st := r.Stats(); st.Resyncs != 1 {
		t.Fatalf("Resyncs = %d, want exactly 1 across %d polls", st.Resyncs, st.FollowRetries)
	}
}

// appendableReader reads from a growing bytes.Buffer, returning io.EOF at the
// current end like a file being tailed.
type appendableReader struct {
	buf *bytes.Buffer
	off int
}

func (a *appendableReader) Read(p []byte) (int, error) {
	b := a.buf.Bytes()
	if a.off >= len(b) {
		return 0, io.EOF
	}
	n := copy(p, b[a.off:])
	a.off += n
	return n, nil
}
