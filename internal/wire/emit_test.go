package wire

import (
	"testing"
)

func TestConnEmitterLifecycleErrors(t *testing.T) {
	var pkts []*Packet
	sink := func(p *Packet) error { pkts = append(pkts, p); return nil }
	c := NewConnEmitter(sink, 1, 1000, 2, 80, 10e6, 5)
	if _, err := c.Open(1e9); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Open(2e9); err == nil {
		t.Error("double Open must fail")
	}
	if err := c.Close(3e9); err != nil {
		t.Fatal(err)
	}
	if err := c.Request(4e9, []byte("GET / HTTP/1.1\r\n\r\n")); err == nil {
		t.Error("Request after Close must fail")
	}
	if err := c.Close(5e9); err != nil {
		t.Error("double Close is a no-op, not an error")
	}
}

func TestConnEmitterImplicitOpen(t *testing.T) {
	var pkts []*Packet
	sink := func(p *Packet) error { pkts = append(pkts, p); return nil }
	c := NewConnEmitter(sink, 1, 1001, 2, 80, 10e6, 5)
	// Request without Open: the handshake is emitted implicitly.
	if err := c.Request(1e9, []byte("GET / HTTP/1.1\r\nHost: x\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	if len(pkts) < 4 {
		t.Fatalf("expected handshake + request, got %d packets", len(pkts))
	}
	if !pkts[0].HasFlag(FlagSYN) {
		t.Error("first packet must be the SYN")
	}
}

func TestConnEmitterSequenceContinuity(t *testing.T) {
	var pkts []*Packet
	sink := func(p *Packet) error { pkts = append(pkts, p); return nil }
	c := NewConnEmitter(sink, 1, 1002, 2, 80, 10e6, 100)
	est, _ := c.Open(1e9)
	hdr := []byte("HTTP/1.1 200 OK\r\nContent-Length: 3000\r\n\r\n")
	if err := c.Response(est, hdr, 3000); err != nil {
		t.Fatal(err)
	}
	if err := c.Response(est+10e6, hdr, 0); err != nil {
		t.Fatal(err)
	}
	// Server-side sequence numbers must be continuous over header + body.
	var seqs []uint32
	var lens []uint32
	for _, p := range pkts {
		if p.SrcPort == 80 && p.WireLen > 0 {
			seqs = append(seqs, p.Seq)
			lens = append(lens, p.WireLen)
		}
	}
	for i := 1; i < len(seqs); i++ {
		if seqs[i] != seqs[i-1]+lens[i-1] {
			t.Fatalf("sequence gap at packet %d: %d != %d+%d", i, seqs[i], seqs[i-1], lens[i-1])
		}
	}
}
