package wire

// TLS ClientHello framing: just enough of RFC 5246 §7.4.1.2 + RFC 6066 §3 to
// carry a server_name (SNI) extension across the synthetic wire. The emitter
// side builds a minimal well-formed hello; the parser side extracts the SNI
// from the client-direction byte stream of a port-443 flow, which is the only
// cleartext hostname signal an encrypted-era trace still offers (§5 of the
// paper covers volumes; DESIGN.md §16 the SNI-era classification built on it).

const (
	tlsRecordHandshake      = 0x16
	tlsHandshakeClientHello = 0x01
	tlsExtServerName        = 0x0000
	tlsSNIHostName          = 0x00

	// maxClientHelloLen bounds how much client-direction data the parser
	// buffers before giving up: every real ClientHello (and certainly the
	// synthetic one) fits well under it, and a stream that hasn't produced a
	// complete hello by then never will.
	maxClientHelloLen = 4096
)

// BuildClientHello renders one TLS record containing a minimal ClientHello
// whose only extension is server_name carrying serverName. Deterministic: the
// 32-byte random is derived from the name (FNV-1a chained), so identical
// traces stay byte-identical run to run. An empty serverName yields a hello
// with an empty extension block — the SNI-less clients of §5-era traffic.
func BuildClientHello(serverName string) []byte {
	// Body: version(2) random(32) session_id(1) ciphers(2+4) compression(1+1)
	var body []byte
	body = append(body, 0x03, 0x03) // TLS 1.2
	body = append(body, helloRandom(serverName)...)
	body = append(body, 0x00)                               // empty session id
	body = append(body, 0x00, 0x04, 0xc0, 0x2f, 0x00, 0x9c) // two suites
	body = append(body, 0x01, 0x00)                         // null compression

	var exts []byte
	if serverName != "" {
		name := []byte(serverName)
		// server_name extension: list length, entry type, name length, name.
		sniData := make([]byte, 0, 5+len(name))
		sniData = append(sniData, byte((len(name)+3)>>8), byte(len(name)+3)) // server_name_list length
		sniData = append(sniData, tlsSNIHostName)
		sniData = append(sniData, byte(len(name)>>8), byte(len(name)))
		sniData = append(sniData, name...)
		exts = append(exts, byte(tlsExtServerName>>8), byte(tlsExtServerName&0xff))
		exts = append(exts, byte(len(sniData)>>8), byte(len(sniData)))
		exts = append(exts, sniData...)
	}
	body = append(body, byte(len(exts)>>8), byte(len(exts)))
	body = append(body, exts...)

	// Handshake header: type + 24-bit length.
	hs := make([]byte, 0, 4+len(body))
	hs = append(hs, tlsHandshakeClientHello, byte(len(body)>>16), byte(len(body)>>8), byte(len(body)))
	hs = append(hs, body...)

	// Record header: type + version + 16-bit length.
	rec := make([]byte, 0, 5+len(hs))
	rec = append(rec, tlsRecordHandshake, 0x03, 0x01, byte(len(hs)>>8), byte(len(hs)))
	rec = append(rec, hs...)
	return rec
}

// helloRandom fills the ClientHello random deterministically from the server
// name (FNV-1a chained), so trace generation stays a pure function of its
// seeds.
func helloRandom(serverName string) []byte {
	h := uint64(14695981039346656037)
	for i := 0; i < len(serverName); i++ {
		h = (h ^ uint64(serverName[i])) * 1099511628211
	}
	out := make([]byte, 32)
	for i := 0; i < 32; i += 8 {
		h = (h ^ uint64(i)) * 1099511628211
		for j := 0; j < 8; j++ {
			out[i+j] = byte(h >> (8 * j))
		}
	}
	return out
}

// ParseClientHelloSNI scans the reassembled client-direction prefix of a TLS
// flow for the ClientHello's server_name.
//
//	done=false           — data is a plausible but incomplete hello; feed more
//	done=true, sni=""    — verdict is final: no SNI (absent extension, or the
//	                       stream is not a parseable ClientHello at all)
//	done=true, sni!=""   — the extracted server name, raw wire bytes
//
// The parser is deliberately forgiving about anything after the extensions it
// needs and strict about bounds: header traces carry truncated and hostile
// bytes, and a summarizer must degrade to "no SNI", never crash or misread.
func ParseClientHelloSNI(data []byte) (sni string, done bool) {
	if len(data) >= 1 && data[0] != tlsRecordHandshake {
		return "", true // not a TLS handshake stream
	}
	if len(data) < 5 {
		return "", false
	}
	recLen := int(data[3])<<8 | int(data[4])
	if recLen > maxClientHelloLen {
		return "", true
	}
	if len(data) < 5+recLen {
		if len(data) >= maxClientHelloLen {
			return "", true
		}
		return "", false // record still streaming in
	}
	hs := data[5 : 5+recLen]
	if len(hs) < 4 || hs[0] != tlsHandshakeClientHello {
		return "", true
	}
	hsLen := int(hs[1])<<16 | int(hs[2])<<8 | int(hs[3])
	body := hs[4:]
	if hsLen > len(body) {
		// Hello split across records; the synthetic trace never does this,
		// and a truncated capture cannot be completed. Give up cleanly.
		return "", true
	}
	body = body[:hsLen]

	// version(2) + random(32)
	off := 2 + 32
	if len(body) < off+1 {
		return "", true
	}
	off += 1 + int(body[off]) // session id
	if len(body) < off+2 {
		return "", true
	}
	off += 2 + (int(body[off])<<8 | int(body[off+1])) // cipher suites
	if len(body) < off+1 {
		return "", true
	}
	off += 1 + int(body[off]) // compression methods
	if len(body) < off+2 {
		return "", true // no extensions block at all: legal, SNI-less
	}
	extLen := int(body[off])<<8 | int(body[off+1])
	off += 2
	if len(body) < off+extLen {
		return "", true
	}
	exts := body[off : off+extLen]
	for len(exts) >= 4 {
		typ := int(exts[0])<<8 | int(exts[1])
		l := int(exts[2])<<8 | int(exts[3])
		exts = exts[4:]
		if l > len(exts) {
			return "", true
		}
		if typ == tlsExtServerName {
			return parseSNIExtension(exts[:l]), true
		}
		exts = exts[l:]
	}
	return "", true
}

// parseSNIExtension walks a server_name extension body and returns the first
// host_name entry, or "" when malformed.
func parseSNIExtension(b []byte) string {
	if len(b) < 2 {
		return ""
	}
	listLen := int(b[0])<<8 | int(b[1])
	b = b[2:]
	if listLen > len(b) {
		return ""
	}
	b = b[:listLen]
	for len(b) >= 3 {
		typ := b[0]
		l := int(b[1])<<8 | int(b[2])
		b = b[3:]
		if l > len(b) {
			return ""
		}
		if typ == tlsSNIHostName {
			return string(b[:l])
		}
		b = b[l:]
	}
	return ""
}

// ClientHello emits a captured ClientHello record carrying serverName as the
// first client payload of the connection — the one cleartext hostname an
// encrypted flow leaks. Call it right after Open on TLS connections; the
// record fits one SnapLen segment by construction.
func (c *ConnEmitter) ClientHello(t int64, serverName string) error {
	if err := c.ensureOpen(t); err != nil {
		return err
	}
	return c.segmented(t, true, BuildClientHello(serverName), 0)
}
