// Kill-and-resume end to end: simulate a trace to disk, run the supervised
// engine over the real on-disk reader (exercising the byte-offset fast-skip
// resume path), crash it at a checkpoint boundary, resume, and require
// byte-identical merged records, stats, and downstream classification
// against an uninterrupted run at the same worker count.
package integration

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"adscape/internal/core"
	"adscape/internal/inference"
	"adscape/internal/rbn"
	"adscape/internal/runz"
	"adscape/internal/webgen"
	"adscape/internal/wire"
)

func TestKillAndResumeOnDiskTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test simulates a trace")
	}
	dir := t.TempDir()
	wopt := webgen.DefaultOptions()
	wopt.NumSites = 120
	world, err := webgen.NewWorld(wopt)
	if err != nil {
		t.Fatal(err)
	}

	tracePath := filepath.Join(dir, "rbn.trace")
	f, err := os.Create(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	w, err := wire.NewWriter(f)
	if err != nil {
		t.Fatal(err)
	}
	opt := rbn.Options{
		World: world, Name: "resume", Households: 12,
		Start:    time.Date(2015, 8, 11, 15, 30, 0, 0, time.UTC),
		Duration: 90 * time.Minute, Seed: 47,
		AnonKey: []byte("resume"), PagesPerHour: 5, Parallelism: 4,
	}
	if _, err := rbn.Simulate(opt, w.Write); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	sortedPath := filepath.Join(dir, "rbn.sorted.trace")
	sortTrace(t, tracePath, sortedPath)

	openReader := func() (*os.File, *wire.Reader) {
		fin, err := os.Open(sortedPath)
		if err != nil {
			t.Fatal(err)
		}
		r, err := wire.NewReaderOptions(fin, wire.ReaderOptions{Lenient: true})
		if err != nil {
			t.Fatal(err)
		}
		return fin, r
	}

	const workers = 4
	fin, r := openReader()
	ref, err := runz.Run(r, runz.Options{Workers: workers})
	fin.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ref.Outcome != runz.OutcomeCompleted || len(ref.Transactions) == 0 {
		t.Fatalf("reference run: outcome=%v txs=%d", ref.Outcome, len(ref.Transactions))
	}

	ckPath := filepath.Join(dir, "run.ckpt")
	interval := ref.PacketsRouted / 3
	fin, r = openReader()
	crashed, err := runz.Run(r, runz.Options{
		Workers: workers, CheckpointPath: ckPath, CheckpointEvery: interval,
		CrashAfterCheckpoints: 1, TraceID: "sorted-47",
	})
	fin.Close()
	if !errors.Is(err, runz.ErrSimulatedCrash) {
		t.Fatalf("crash run error = %v", err)
	}
	if crashed.PacketsRouted != interval {
		t.Fatalf("crashed at packet %d, want %d", crashed.PacketsRouted, interval)
	}

	ck, err := runz.LoadCheckpoint(ckPath)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Reader == nil {
		t.Fatal("checkpoint over an on-disk trace must carry the reader fast-skip state")
	}
	fin, r = openReader()
	res, err := runz.Run(r, runz.Options{
		Workers: workers, CheckpointPath: ckPath, CheckpointEvery: interval,
		Resume: ck, TraceID: "sorted-47",
	})
	fin.Close()
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != runz.OutcomeCompleted || res.ResumedPackets != interval {
		t.Fatalf("resumed run: outcome=%v resumed=%d", res.Outcome, res.ResumedPackets)
	}

	// Byte-identical merged output.
	if res.Stats != ref.Stats || res.Table != ref.Table {
		t.Fatalf("stats diverged:\n resumed %+v %+v\n full    %+v %+v", res.Stats, res.Table, ref.Stats, ref.Table)
	}
	if len(res.Transactions) != len(ref.Transactions) || len(res.TLSFlows) != len(ref.TLSFlows) {
		t.Fatalf("record counts diverged: %d/%d vs %d/%d",
			len(res.Transactions), len(res.TLSFlows), len(ref.Transactions), len(ref.TLSFlows))
	}
	for i := range res.Transactions {
		if !reflect.DeepEqual(*res.Transactions[i], *ref.Transactions[i]) {
			t.Fatalf("transaction %d differs after resume", i)
		}
	}
	for i := range res.TLSFlows {
		if !reflect.DeepEqual(*res.TLSFlows[i], *ref.TLSFlows[i]) {
			t.Fatalf("TLS flow %d differs after resume", i)
		}
	}

	// Downstream classification and inference agree too.
	pl := core.NewPipeline(world.Bundle.ClassifierEngine())
	aggRef := core.Aggregate(pl.ClassifyAll(ref.Transactions))
	aggRes := core.Aggregate(pl.ClassifyAll(res.Transactions))
	if !reflect.DeepEqual(aggRef, aggRes) {
		t.Fatalf("classification diverged: %+v vs %+v", aggRef, aggRes)
	}
	usersRef := inference.Aggregate(pl.ClassifyAll(ref.Transactions))
	usersRes := inference.Aggregate(pl.ClassifyAll(res.Transactions))
	if !reflect.DeepEqual(usersRef, usersRes) {
		t.Fatal("per-user inference diverged after resume")
	}
}
