// Daemon lifecycle end to end: simulate a realistic trace to disk, serve it
// through the continuous-service composition (follow source over a growing
// file, rolling window emission, automatic state-dir resume), interrupt
// mid-stream, and require the final window record files to be byte-identical
// to an uninterrupted daemon run — and their totals to match the one-shot
// batch pipeline over the same trace.
package integration

import (
	"io"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"adscape/internal/daemon"
	"adscape/internal/pipeline"
	"adscape/internal/rbn"
	"adscape/internal/runz"
	"adscape/internal/webgen"
	"adscape/internal/wire"
)

// readTracePackets loads a whole on-disk trace into memory.
func readTracePackets(t *testing.T, path string) []*wire.Packet {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r, err := wire.NewReader(f)
	if err != nil {
		t.Fatal(err)
	}
	var pkts []*wire.Packet
	for {
		p, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		pkts = append(pkts, p)
	}
	return pkts
}

func writeTracePackets(t *testing.T, path string, pkts []*wire.Packet) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w, err := wire.NewWriter(f)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pkts {
		if err := w.Write(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
}

// stopAfterReads closes stop once n packets have been read, so the daemon
// drains at a deterministic point mid-stream.
type stopAfterReads struct {
	src   wire.PacketSource
	n     int
	count int
	stop  chan struct{}
	once  sync.Once
}

func (s *stopAfterReads) Read() (*wire.Packet, error) {
	if s.count >= s.n {
		s.once.Do(func() { close(s.stop) })
	}
	s.count++
	return s.src.Read()
}

func windowFileBytes(t *testing.T, stateDir string) map[string]string {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(stateDir, daemon.WindowsSubdir, "window-*.json"))
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]string, len(paths))
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		out[filepath.Base(p)] = string(data)
	}
	return out
}

func TestDaemonLifecycleOnDiskTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test simulates a trace")
	}
	dir := t.TempDir()
	wopt := webgen.DefaultOptions()
	wopt.NumSites = 120
	world, err := webgen.NewWorld(wopt)
	if err != nil {
		t.Fatal(err)
	}

	rawPath := filepath.Join(dir, "rbn.trace")
	f, err := os.Create(rawPath)
	if err != nil {
		t.Fatal(err)
	}
	w, err := wire.NewWriter(f)
	if err != nil {
		t.Fatal(err)
	}
	opt := rbn.Options{
		World: world, Name: "daemon", Households: 10,
		Start:    time.Date(2015, 8, 11, 19, 0, 0, 0, time.UTC),
		Duration: 60 * time.Minute, Seed: 53,
		AnonKey: []byte("daemon"), PagesPerHour: 5, Parallelism: 4,
	}
	if _, err := rbn.Simulate(opt, w.Write); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	sortedPath := filepath.Join(dir, "rbn.sorted.trace")
	sortTrace(t, rawPath, sortedPath)
	pkts := readTracePackets(t, sortedPath)
	if len(pkts) == 0 {
		t.Fatal("empty trace")
	}

	const workers = 4
	engine := world.Bundle.ClassifierEngine()
	baseCfg := func(stateDir string) daemon.Config {
		return daemon.Config{
			Dir:             stateDir,
			Window:          5 * time.Minute,
			Grace:           10 * time.Second,
			IdleHorizon:     20 * time.Minute,
			Workers:         workers,
			Engine:          engine,
			CheckpointEvery: int64(len(pkts)) / 5,
		}
	}

	// Uninterrupted reference: the whole trace through the daemon in one run.
	refDir := t.TempDir()
	refRes, err := daemon.Run(pipeline.NewSliceSource(pkts), baseCfg(refDir))
	if err != nil {
		t.Fatal(err)
	}
	if refRes.Run.Outcome != runz.OutcomeCompleted || refRes.Run.WindowsEmitted == 0 {
		t.Fatalf("reference run: outcome=%v windows=%d", refRes.Run.Outcome, refRes.Run.WindowsEmitted)
	}
	refWindows := windowFileBytes(t, refDir)

	// Interrupted service: follow a file holding only the first two thirds,
	// drain mid-stream with a window pending (graceful SIGTERM equivalent).
	liveDir := t.TempDir()
	livePath := filepath.Join(liveDir, "live.trace")
	cut := 2 * len(pkts) / 3
	writeTracePackets(t, livePath, pkts[:cut])
	stateDir := filepath.Join(liveDir, "state")

	// The stop channel goes to the supervisor only, so this drain models a
	// signal arriving mid-stream: OutcomeStopped with windows pending.
	stop := make(chan struct{})
	src1, err := daemon.NewFollowSource(livePath, daemon.FollowOptions{Poll: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	cfg1 := baseCfg(stateDir)
	cfg1.Stop = stop
	res1, err := daemon.Run(&stopAfterReads{src: src1, n: cut / 2, stop: stop}, cfg1)
	src1.Close()
	if err != nil {
		t.Fatal(err)
	}
	if res1.Run.Outcome != runz.OutcomeStopped {
		t.Fatalf("interrupted run outcome = %v, want stopped", res1.Run.Outcome)
	}
	if res1.Run.Checkpoints == 0 {
		t.Fatal("interrupted run wrote no checkpoint")
	}

	// Restart over the grown file (the capture kept appending while the
	// daemon was down); the run must resume from the state-dir checkpoint,
	// not re-ingest from scratch.
	// This time stop goes to the SOURCE (the daemon shutdown shape): once
	// every packet has been read — resume fast-forward reads included — the
	// source returns EOF and the run completes through the normal path.
	writeTracePackets(t, livePath, pkts)
	stop2 := make(chan struct{})
	src2, err := daemon.NewFollowSource(livePath, daemon.FollowOptions{Poll: 5 * time.Millisecond, Stop: stop2})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := daemon.Run(&stopAfterReads{src: src2, n: len(pkts), stop: stop2}, baseCfg(stateDir))
	src2.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Resumed {
		t.Fatal("restart did not resume from the state-dir checkpoint")
	}
	if res2.Run.Outcome != runz.OutcomeCompleted {
		t.Fatalf("resumed run outcome = %v, want completed", res2.Run.Outcome)
	}
	if res2.Run.ResumedPackets == 0 {
		t.Fatal("resumed run replayed nothing from the checkpoint")
	}

	// The stitched-together service produced exactly the reference's files.
	gotWindows := windowFileBytes(t, stateDir)
	if len(gotWindows) != len(refWindows) {
		t.Fatalf("window file count: got %d, want %d", len(gotWindows), len(refWindows))
	}
	if !reflect.DeepEqual(gotWindows, refWindows) {
		for name, body := range refWindows {
			if gotWindows[name] != body {
				t.Fatalf("window file %s differs after interrupted lifecycle", name)
			}
		}
	}

	// And the window totals agree with the one-shot batch pipeline.
	batch, err := pipeline.Analyze(pipeline.NewSliceSource(pkts), pipeline.Options{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	recs, err := daemon.ReadWindowRecords(filepath.Join(stateDir, daemon.WindowsSubdir))
	if err != nil {
		t.Fatal(err)
	}
	var txs, flows int
	for _, r := range recs {
		txs += r.Transactions
		flows += r.TLSFlows
	}
	if txs != len(batch.Transactions) || flows != len(batch.TLSFlows) {
		t.Fatalf("window totals tx=%d flows=%d, batch tx=%d flows=%d",
			txs, flows, len(batch.Transactions), len(batch.TLSFlows))
	}
}
