// Distributed map-reduce end to end: the merge of partials over any
// flow-complete partitioning of a trace must reproduce the single-process
// report byte for byte, for randomized uneven splits and shuffled merge
// orders — including a partition whose worker was drained mid-stream and
// resumed to completion before emitting its partial.
package integration

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"adscape/internal/abp"
	"adscape/internal/analyzer"
	"adscape/internal/core"
	"adscape/internal/partial"
	"adscape/internal/pipeline"
	"adscape/internal/rbn"
	"adscape/internal/report"
	"adscape/internal/runz"
	"adscape/internal/webgen"
	"adscape/internal/wire"
)

const distWorkers = 4

// distWorld and distTrace lazily build the shared world and sorted trace for
// the distributed tests.
var distOnce struct {
	sync.Once
	world *webgen.World
	trace string
	total int64
	err   error
}

func distFixture(t *testing.T) (*webgen.World, string, int64) {
	t.Helper()
	distOnce.Do(func() {
		wopt := webgen.DefaultOptions()
		wopt.NumSites = 120
		world, err := webgen.NewWorld(wopt)
		if err != nil {
			distOnce.err = err
			return
		}
		dir, err := os.MkdirTemp("", "dist-fixture-*")
		if err != nil {
			distOnce.err = err
			return
		}
		raw := filepath.Join(dir, "raw.trace")
		f, err := os.Create(raw)
		if err != nil {
			distOnce.err = err
			return
		}
		w, err := wire.NewWriter(f)
		if err != nil {
			distOnce.err = err
			return
		}
		opt := rbn.Options{
			World: world, Name: "dist", Households: 10,
			Start:    time.Date(2015, 8, 12, 9, 0, 0, 0, time.UTC),
			Duration: 60 * time.Minute, Seed: 53,
			AnonKey: []byte("dist"), PagesPerHour: 5, Parallelism: 4,
		}
		if _, err := rbn.Simulate(opt, w.Write); err != nil {
			distOnce.err = err
			return
		}
		if err := w.Flush(); err != nil {
			distOnce.err = err
			return
		}
		if err := f.Close(); err != nil {
			distOnce.err = err
			return
		}
		sorted := filepath.Join(dir, "rbn.trace")
		sortTraceErr := func() error {
			fin, err := os.Open(raw)
			if err != nil {
				return err
			}
			defer fin.Close()
			r, err := wire.NewReader(fin)
			if err != nil {
				return err
			}
			fout, err := os.Create(sorted)
			if err != nil {
				return err
			}
			defer fout.Close()
			sw, err := wire.NewWriter(fout)
			if err != nil {
				return err
			}
			if err := wire.SortTrace(r, sw, wire.SortOptions{MaxInMemory: 1 << 16, TempDir: dir}); err != nil {
				return err
			}
			return sw.Flush()
		}()
		if sortTraceErr != nil {
			distOnce.err = sortTraceErr
			return
		}
		total, err := partial.CountPackets(sorted)
		if err != nil {
			distOnce.err = err
			return
		}
		distOnce.world = world
		distOnce.trace = sorted
		distOnce.total = total
	})
	if distOnce.err != nil {
		t.Fatal(distOnce.err)
	}
	return distOnce.world, distOnce.trace, distOnce.total
}

func distConfig(world *webgen.World) partial.Config {
	return partial.Config{
		Seed:       webgen.DefaultOptions().Seed,
		Sites:      120,
		Workers:    distWorkers,
		Strict:     false,
		Limits:     analyzer.Limits{},
		EngineHash: partial.EngineHash(world.Bundle.ClassifierEngine()),
	}
}

func distReportOptions() report.Options {
	return report.Options{
		Workers:      distWorkers,
		Users:        true,
		Threshold:    300,
		VerdictCache: abp.DefaultVerdictCacheEntries,
	}
}

// runTracePart runs the supervised engine over one trace file and returns
// the result plus the reader's stats.
func runTracePart(t *testing.T, path string, opt runz.Options) (*runz.Result, wire.ReaderStats) {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r, err := wire.NewReaderOptions(f, wire.ReaderOptions{Lenient: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := runz.Run(r, opt)
	if res == nil {
		t.Fatal(err)
	}
	return res, r.Stats()
}

// emitPartial analyzes one part file to completion and saves its partial.
func emitPartial(t *testing.T, world *webgen.World, partPath, outPath, setID string, idx, cnt int) {
	t.Helper()
	res, rs := runTracePart(t, partPath, runz.Options{Workers: distWorkers})
	if res.Outcome != runz.OutcomeCompleted {
		t.Fatalf("part %d: outcome %v", idx, res.Outcome)
	}
	engine := world.Bundle.ClassifierEngine()
	cls := pipeline.Classify(core.NewPipeline(engine), res.Transactions, 1)
	p, err := partial.Build(res, rs, distConfig(world), partial.Partition{
		TraceID:   partial.FingerprintFile(partPath),
		TraceName: filepath.Base(partPath),
		SetID:     setID, Index: idx, Count: cnt,
	}, cls, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := partial.Save(outPath, p); err != nil {
		t.Fatal(err)
	}
}

func renderMerged(t *testing.T, world *webgen.World, paths []string) []byte {
	t.Helper()
	files, err := partial.LoadAll(paths)
	if err != nil {
		t.Fatal(err)
	}
	m, err := partial.Reduce(files)
	if err != nil {
		t.Fatal(err)
	}
	d := report.Data{
		Workers: m.Workers, Stats: m.Stats, Reader: m.Reader, Table: m.Table,
		Restarts: m.Restarts, LostFlows: m.LostFlows,
		Transactions: m.Transactions, TLSFlows: m.TLSFlows,
	}
	for _, s := range m.Shards {
		d.Shards = append(d.Shards, report.Shard{Shard: s.Shard, Packets: s.Packets, Stats: s.Stats, Table: s.Table})
	}
	var buf bytes.Buffer
	if err := report.Print(&buf, world, d, distReportOptions()); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestDistributedMergeProperty: merge-of-partials ≡ one-shot, across
// randomized partition splits (uneven cut points, 1..8 parts) and shuffled
// merge order.
func TestDistributedMergeProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test simulates a trace")
	}
	world, trace, total := distFixture(t)

	// Single-process reference report.
	res, rs := runTracePart(t, trace, runz.Options{Workers: distWorkers})
	if res.Outcome != runz.OutcomeCompleted || len(res.Transactions) == 0 {
		t.Fatalf("reference run: outcome=%v txs=%d", res.Outcome, len(res.Transactions))
	}
	d := report.Data{
		Workers: res.Workers, Stats: res.Stats, Reader: rs, Table: res.Table,
		Restarts: res.Restarts, LostFlows: res.LostFlows,
		Transactions: res.Transactions, TLSFlows: res.TLSFlows,
	}
	for _, s := range res.Shards {
		d.Shards = append(d.Shards, report.Shard{Shard: s.Shard, Packets: s.Packets, Stats: s.Stats, Table: s.Table})
	}
	var refBuf bytes.Buffer
	if err := report.Print(&refBuf, world, d, distReportOptions()); err != nil {
		t.Fatal(err)
	}
	ref := refBuf.Bytes()
	if !strings.Contains(string(ref), "active browsers") {
		t.Fatal("reference report missing the inference section")
	}

	for trial := 0; trial < 3; trial++ {
		rng := rand.New(rand.NewSource(int64(100 + trial)))
		n := 1 + rng.Intn(8)
		// Uneven split: n-1 random distinct interior cut ranks.
		cuts := map[int64]bool{}
		for len(cuts) < n-1 {
			cuts[1+rng.Int63n(total-1)] = true
		}
		bounds := make([]int64, 0, n)
		for c := range cuts {
			bounds = append(bounds, c)
		}
		bounds = append(bounds, total)
		for i := 0; i < len(bounds); i++ {
			for j := i + 1; j < len(bounds); j++ {
				if bounds[j] < bounds[i] {
					bounds[i], bounds[j] = bounds[j], bounds[i]
				}
			}
		}

		dir := t.TempDir()
		allParts, err := partial.SplitTrace(trace, bounds, dir, "part")
		if err != nil {
			t.Fatal(err)
		}
		// Random cuts can leave a span with no flow openings; an empty part
		// carries no packets, so drop it and renumber (adshard instead
		// re-splits until every worker has input).
		parts := allParts[:0]
		for _, part := range allParts {
			if part.Packets > 0 {
				parts = append(parts, part)
			}
		}
		setID := "trial"
		paths := make([]string, len(parts))
		for i, part := range parts {
			paths[i] = filepath.Join(dir, "part.bin."+filepath.Base(part.Path))
			emitPartial(t, world, part.Path, paths[i], setID, i, len(parts))
		}
		rng.Shuffle(len(paths), func(i, j int) { paths[i], paths[j] = paths[j], paths[i] })

		got := renderMerged(t, world, paths)
		if !bytes.Equal(got, ref) {
			t.Fatalf("trial %d (n=%d, bounds=%v): merged report differs from single-process reference:\n--- merged\n%s\n--- reference\n%s",
				trial, n, bounds, got, ref)
		}
	}
}

// TestDrainedPartialResume: a worker drained mid-stream must refuse to emit
// a partial; resumed to completion it must emit a byte-identical partial to
// an undisturbed run, and the merge including it must match the reference.
func TestDrainedPartialResume(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test simulates a trace")
	}
	world, trace, total := distFixture(t)
	dir := t.TempDir()

	// Two flow-complete halves; worker 0 is the one we drain.
	parts, err := partial.SplitTrace(trace, partial.EqualRankBounds(total, 2), dir, "part")
	if err != nil {
		t.Fatal(err)
	}

	// Undisturbed partial of half 0.
	oneshot := filepath.Join(dir, "oneshot.bin")
	emitPartial(t, world, parts[0].Path, oneshot, "drainjob", 0, 2)

	// Drained run over half 0: stop as soon as the first periodic
	// checkpoint lands, so the drain is mid-stream by construction.
	ckPath := filepath.Join(dir, "half0.ckpt")
	stop := make(chan struct{})
	var stopOnce sync.Once
	res, rs := runTracePart(t, parts[0].Path, runz.Options{
		Workers:        distWorkers,
		CheckpointPath: ckPath, CheckpointEvery: parts[0].Packets / 4,
		TraceID: partial.FingerprintFile(parts[0].Path),
		Stop:    stop,
		OnEvent: func(msg string) {
			if strings.HasPrefix(msg, "checkpoint ") {
				stopOnce.Do(func() { close(stop) })
			}
		},
	})
	if res.Outcome != runz.OutcomeStopped {
		t.Fatalf("drained run outcome = %v, want stopped", res.Outcome)
	}
	// The emit path must refuse to serialize the incomplete state.
	cls := pipeline.Classify(core.NewPipeline(world.Bundle.ClassifierEngine()), res.Transactions, 1)
	if _, err := partial.Build(res, rs, distConfig(world), partial.Partition{
		TraceID: partial.FingerprintFile(parts[0].Path), SetID: "drainjob", Index: 0, Count: 2,
	}, cls, nil); err == nil {
		t.Fatal("Build accepted a drained (incomplete) run")
	}

	// Resume to completion and emit.
	ck, err := runz.LoadCheckpoint(ckPath)
	if err != nil {
		t.Fatal(err)
	}
	res, rs = runTracePart(t, parts[0].Path, runz.Options{
		Workers:        distWorkers,
		CheckpointPath: ckPath, CheckpointEvery: parts[0].Packets / 4,
		TraceID: partial.FingerprintFile(parts[0].Path),
		Resume:  ck,
	})
	if res.Outcome != runz.OutcomeCompleted || res.ResumedPackets == 0 {
		t.Fatalf("resumed run: outcome=%v resumed=%d", res.Outcome, res.ResumedPackets)
	}
	engine := world.Bundle.ClassifierEngine()
	cls = pipeline.Classify(core.NewPipeline(engine), res.Transactions, 1)
	p, err := partial.Build(res, rs, distConfig(world), partial.Partition{
		TraceID:   partial.FingerprintFile(parts[0].Path),
		TraceName: filepath.Base(parts[0].Path),
		SetID:     "drainjob", Index: 0, Count: 2,
	}, cls, nil)
	if err != nil {
		t.Fatal(err)
	}
	resumed := filepath.Join(dir, "resumed.bin")
	if err := partial.Save(resumed, p); err != nil {
		t.Fatal(err)
	}

	a, err := os.ReadFile(oneshot)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(resumed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("resumed partial differs byte-for-byte from the one-shot partial")
	}

	// The merge including the drained-and-resumed half matches the
	// single-process reference.
	other := filepath.Join(dir, "half1.bin")
	emitPartial(t, world, parts[1].Path, other, "drainjob", 1, 2)
	got := renderMerged(t, world, []string{resumed, other})

	res, rs = runTracePart(t, trace, runz.Options{Workers: distWorkers})
	d := report.Data{
		Workers: res.Workers, Stats: res.Stats, Reader: rs, Table: res.Table,
		Restarts: res.Restarts, LostFlows: res.LostFlows,
		Transactions: res.Transactions, TLSFlows: res.TLSFlows,
	}
	for _, s := range res.Shards {
		d.Shards = append(d.Shards, report.Shard{Shard: s.Shard, Packets: s.Packets, Stats: s.Stats, Table: s.Table})
	}
	var refBuf bytes.Buffer
	if err := report.Print(&refBuf, world, d, distReportOptions()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, refBuf.Bytes()) {
		t.Fatal("merge including the resumed partial differs from the single-process reference")
	}
}
