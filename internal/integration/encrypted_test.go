package integration

import (
	"testing"
	"time"

	"adscape/internal/analyzer"
	"adscape/internal/inference"
	"adscape/internal/pipeline"
	"adscape/internal/rbn"
	"adscape/internal/webgen"
	"adscape/internal/wire"
)

// TestEncryptedEraSNIInference runs the full pipeline on a modern-era trace
// (HTTPSShare 0.95: ≥90% of traffic is TLS and the URL is invisible) and
// checks that the SNI-based indicators — the §6.2 list-download match by
// server name and the domain-verdict ad-flow ratio — still identify ad-block
// households against rbn ground truth (DESIGN.md §16).
func TestEncryptedEraSNIInference(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test simulates a trace")
	}
	wopt := webgen.DefaultOptions()
	wopt.NumSites = 120
	wopt.HTTPSShare = 0.95
	wopt.ListOptions.ExtraGenericRules = 30
	world, err := webgen.NewWorld(wopt)
	if err != nil {
		t.Fatal(err)
	}

	col := &analyzer.Collector{}
	an := analyzer.New(col)
	// A full day: the list-download indicator needs the daily ABP contact
	// cycle to come around (§3.2), which a short window structurally misses.
	opt := rbn.Options{
		World: world, Name: "enc", Households: 25,
		Start:    time.Date(2026, 8, 11, 0, 0, 0, 0, time.UTC),
		Duration: 24 * time.Hour, Seed: 41,
		AnonKey: []byte("enc"), PagesPerHour: 4, Parallelism: 4,
	}
	sim, err := rbn.Simulate(opt, func(p *wire.Packet) error { an.Add(p); return nil })
	if err != nil {
		t.Fatal(err)
	}
	an.Finish()
	stats := an.Stats()

	// The era knob must actually produce a TLS-dominant trace: ≥90% of the
	// application bytes are opaque, and nearly every TLS flow led with a
	// parseable SNI (the generator emits a ClientHello on every HTTPS conn).
	var tlsBytes uint64
	for _, f := range col.Flows {
		tlsBytes += f.Bytes
	}
	total := tlsBytes + stats.HTTPWireBytes
	if total == 0 {
		t.Fatal("empty trace")
	}
	if share := float64(tlsBytes) / float64(total); share < 0.9 {
		t.Fatalf("TLS byte share %.3f < 0.9 — era knob ineffective (tls=%d http=%d)", share, tlsBytes, stats.HTTPWireBytes)
	}
	if stats.TLSFlows == 0 {
		t.Fatal("no TLS flows")
	}
	if cov := float64(stats.SNIFlows) / float64(stats.TLSFlows); cov < 0.95 {
		t.Fatalf("SNI coverage %.3f < 0.95 (%d/%d)", cov, stats.SNIFlows, stats.TLSFlows)
	}

	// Encrypted-era classification + the SNI-hostname list-download indicator.
	engine := world.Bundle.ClassifierEngine()
	tls := pipeline.ClassifyTLS(engine, col.Flows, 4)
	inference.MarkTLSListDownloads(tls.Households, col.Flows, webgen.ABPListHost, world.AdblockServerIPs)
	if tls.AdFlows == 0 {
		t.Fatal("no ad-classified SNI flows in a modern-era trace")
	}

	// Ground truth per household IP: any device running Adblock Plus.
	truth := map[uint32]bool{}
	for _, d := range sim.Devices {
		if d.Setup.UsesAdblockPlus() {
			truth[d.ClientIP] = true
		}
	}
	if len(truth) == 0 {
		t.Skip("no ABP households at this scale")
	}

	tp, fp, fn := 0, 0, 0
	for ip, h := range tls.Households {
		inferred := h.ListDownload
		switch {
		case inferred && truth[ip]:
			tp++
		case inferred && !truth[ip]:
			fp++
		case !inferred && truth[ip]:
			fn++
		}
	}
	t.Logf("SNI list-download detection: tp=%d fp=%d fn=%d over %d households (%d ABP)",
		tp, fp, fn, len(tls.Households), len(truth))
	if tp == 0 {
		t.Fatal("no ABP household detected via SNI list downloads")
	}
	// The SNI match is exact (subdomain-of on the server name), so a false
	// positive would mean a non-ABP household was marked — precision must be
	// perfect on synthetic ground truth.
	if fp != 0 {
		t.Errorf("false positives in SNI list-download detection: %d", fp)
	}
	// Recall: ABP clients refresh their lists well within the trace window
	// in the simulator, so most blocking households should be caught.
	if recall := float64(tp) / float64(tp+fn); recall < 0.5 {
		t.Errorf("SNI list-download recall %.2f < 0.5", recall)
	}

	// The ratio indicator must point the right way: ad-blocking households
	// see a lower share of ad-server flows than vanilla ones on average.
	var blockSum, blockN, vanillaSum, vanillaN float64
	for ip, h := range tls.Households {
		if h.SNIFlows < 20 {
			continue
		}
		if truth[ip] {
			blockSum += h.AdRatio()
			blockN++
		} else {
			vanillaSum += h.AdRatio()
			vanillaN++
		}
	}
	if blockN > 0 && vanillaN > 0 {
		bm, vm := blockSum/blockN, vanillaSum/vanillaN
		t.Logf("mean TLS ad-ratio: blocking=%.4f vanilla=%.4f", bm, vm)
		if bm >= vm {
			t.Errorf("blocking households' mean TLS ad-ratio %.4f not below vanilla %.4f", bm, vm)
		}
	}
}
