// Package integration exercises the complete reproduction pipeline the way
// the command-line tools chain it: simulate → trace file on disk → external
// sort → analyze → classify → infer → evaluate against ground truth. It is
// the closest automated equivalent of running rbnsim | tracesort | adtrace.
package integration

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"adscape/internal/analyzer"
	"adscape/internal/core"
	"adscape/internal/dnssim"
	"adscape/internal/inference"
	"adscape/internal/rbn"
	"adscape/internal/webgen"
	"adscape/internal/wire"
)

func TestFullPipelineThroughFiles(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test simulates a trace")
	}
	dir := t.TempDir()
	wopt := webgen.DefaultOptions()
	wopt.NumSites = 120
	wopt.ListOptions.ExtraGenericRules = 30
	world, err := webgen.NewWorld(wopt)
	if err != nil {
		t.Fatal(err)
	}

	// 1. Simulate to a trace file (rbnsim).
	tracePath := filepath.Join(dir, "rbn.trace")
	f, err := os.Create(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	w, err := wire.NewWriter(f)
	if err != nil {
		t.Fatal(err)
	}
	opt := rbn.Options{
		World: world, Name: "integ", Households: 20,
		Start:    time.Date(2015, 8, 11, 15, 30, 0, 0, time.UTC),
		Duration: 3 * time.Hour, Seed: 31,
		AnonKey: []byte("integ"), PagesPerHour: 5, Parallelism: 4,
	}
	sim, err := rbn.Simulate(opt, w.Write)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() == 0 {
		t.Fatal("empty trace file")
	}

	// 2. Sort the trace into capture order (tracesort).
	sortedPath := filepath.Join(dir, "rbn.sorted.trace")
	sortTrace(t, tracePath, sortedPath)

	// 3. Analyze the sorted trace (adtrace).
	fin, err := os.Open(sortedPath)
	if err != nil {
		t.Fatal(err)
	}
	defer fin.Close()
	r, err := wire.NewReader(fin)
	if err != nil {
		t.Fatal(err)
	}
	col, stats, err := analyzer.AnalyzeTrace(r)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Packets != sim.Packets {
		t.Fatalf("packets: analyzed %d, simulated %d", stats.Packets, sim.Packets)
	}
	if stats.HTTPTransactions == 0 || stats.TLSFlows == 0 {
		t.Fatalf("stats: %+v", stats)
	}
	// Time-ordered input must yield the same transaction count as the
	// generation-ordered trace (flow reassembly handles the interleaving).
	col2, stats2 := analyzeFile(t, tracePath)
	if stats2.HTTPTransactions != stats.HTTPTransactions {
		t.Errorf("sorting changed transaction count: %d vs %d",
			stats.HTTPTransactions, stats2.HTTPTransactions)
	}
	_ = col2

	// 4. Classify and infer (adtrace -users), discovering the ABP servers
	// via DNS rather than simulator internals.
	pipeline := core.NewPipeline(world.Bundle.ClassifierEngine())
	results := pipeline.ClassifyAll(col.Transactions)
	agg := core.Aggregate(results)
	if agg.AdRatio() < 0.05 || agg.AdRatio() > 0.4 {
		t.Errorf("trace ad ratio = %.3f, implausible", agg.AdRatio())
	}
	users := inference.Aggregate(results)
	abpIPs := dnssim.DiscoverAll(world.DNSZone(), webgen.ABPListHost, 3, 4)
	if len(abpIPs) != len(world.AdblockServerIPs) {
		t.Errorf("DNS discovery found %d ABP servers, world has %d", len(abpIPs), len(world.AdblockServerIPs))
	}
	inference.MarkListDownloads(users, col.Flows, webgen.ABPListHost, abpIPs)

	iopt := inference.Options{RatioThreshold: 0.05, ActiveThreshold: 120}
	active := inference.ActiveBrowsers(users, iopt)
	if len(active) == 0 {
		t.Fatal("no active browsers in 3h window")
	}

	// 5. Evaluate against ground truth: precision of the type-C call must
	// be high (the indicators are conservative).
	truth := map[core.UserKey]rbn.BlockerSetup{}
	for _, d := range sim.Devices {
		truth[core.UserKey{IP: d.ClientIP, UserAgent: d.UserAgent}] = d.Setup
	}
	det := inference.EvaluateDetection(active, iopt, func(k core.UserKey) (bool, bool) {
		s, ok := truth[k]
		return s.UsesAdblockPlus(), ok
	})
	t.Logf("detection over %d active browsers: %s", len(active), det)
	if det.TruePositives+det.FalseNegatives == 0 {
		t.Skip("no ABP users among actives at this scale")
	}
	if det.Precision() < 0.6 {
		t.Errorf("type-C precision %.2f too low: %s", det.Precision(), det)
	}
}

func sortTrace(t *testing.T, in, out string) {
	t.Helper()
	fin, err := os.Open(in)
	if err != nil {
		t.Fatal(err)
	}
	defer fin.Close()
	r, err := wire.NewReader(fin)
	if err != nil {
		t.Fatal(err)
	}
	fout, err := os.Create(out)
	if err != nil {
		t.Fatal(err)
	}
	defer fout.Close()
	w, err := wire.NewWriter(fout)
	if err != nil {
		t.Fatal(err)
	}
	if err := wire.SortTrace(r, w, wire.SortOptions{MaxInMemory: 4096, TempDir: t.TempDir()}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	// Verify ordering.
	fchk, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer fchk.Close()
	rr, err := wire.NewReader(fchk)
	if err != nil {
		t.Fatal(err)
	}
	last := int64(-1 << 62)
	n := 0
	if err := rr.ForEach(func(p *wire.Packet) error {
		if p.Time < last {
			t.Fatal("sorted trace out of order")
		}
		last = p.Time
		n++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("sorted trace empty")
	}
}

func analyzeFile(t *testing.T, path string) (*analyzer.Collector, analyzer.Stats) {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r, err := wire.NewReader(f)
	if err != nil {
		t.Fatal(err)
	}
	col, stats, err := analyzer.AnalyzeTrace(r)
	if err != nil {
		t.Fatal(err)
	}
	return col, stats
}
