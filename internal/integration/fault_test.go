// Fault-injection integration tests: the complete ingest path (reader →
// flow table → HTTP extraction) against a realistic RBN trace that has been
// damaged the way live vantage points damage data — corrupt bytes on disk,
// and loss/duplication/reordering on the wire. The pipeline must never
// panic, must respect its memory bounds, and must degrade proportionally
// with every shed piece of work visible in the degradation counters.
package integration

import (
	"bytes"
	"io"
	"math/rand"
	"sort"
	"testing"
	"time"

	"adscape/internal/analyzer"
	"adscape/internal/rbn"
	"adscape/internal/webgen"
	"adscape/internal/wire"
)

// buildFaultTrace simulates a small RBN vantage point and returns the
// encoded trace in capture (time) order plus per-record start offsets.
func buildFaultTrace(t *testing.T) (data []byte, offsets []int) {
	t.Helper()
	wopt := webgen.DefaultOptions()
	wopt.NumSites = 100
	world, err := webgen.NewWorld(wopt)
	if err != nil {
		t.Fatal(err)
	}
	var pkts []*wire.Packet
	opt := rbn.Options{
		World: world, Name: "fault", Households: 12,
		Start:    time.Date(2015, 8, 11, 16, 0, 0, 0, time.UTC),
		Duration: 90 * time.Minute, Seed: 77,
		AnonKey: []byte("fault"), PagesPerHour: 5, Parallelism: 4,
	}
	if _, err := rbn.Simulate(opt, func(p *wire.Packet) error {
		pkts = append(pkts, p)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// Generation order is device-by-device; a capture monitor sees time
	// order, which is also what the eviction clock assumes.
	sort.SliceStable(pkts, func(i, j int) bool { return pkts[i].Time < pkts[j].Time })

	var buf bytes.Buffer
	w, err := wire.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pkts {
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		offsets = append(offsets, buf.Len())
		if err := w.Write(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), offsets
}

// analyzeBounded streams src through a bounded analyzer, enforcing the
// flow cap at every packet.
func analyzeBounded(t *testing.T, src wire.PacketSource, lim analyzer.Limits) (*analyzer.Collector, *analyzer.Analyzer) {
	t.Helper()
	col := &analyzer.Collector{}
	a := analyzer.NewWithLimits(col, lim)
	for {
		p, err := src.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("reading: %v", err)
		}
		a.Add(p)
		if cap := lim.Table.MaxFlows; cap > 0 && a.NumActive() > cap {
			t.Fatalf("NumActive %d exceeds configured cap %d", a.NumActive(), cap)
		}
	}
	a.Finish()
	return col, a
}

func TestIngestSurvivesDamagedTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test simulates a trace")
	}
	data, offsets := buildFaultTrace(t)
	nRecords := len(offsets)

	// Clean baseline, strict mode.
	r, err := wire.NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	cleanCol, cleanStats, err := analyzer.AnalyzeTrace(r)
	if err != nil {
		t.Fatal(err)
	}
	clean := len(cleanCol.Transactions)
	if clean == 0 || cleanStats.TLSFlows == 0 {
		t.Fatalf("baseline implausible: %+v", cleanStats)
	}
	t.Logf("baseline: %d records, %d transactions, %d TLS flows", nRecords, clean, cleanStats.TLSFlows)

	lim := analyzer.Limits{
		Table: wire.Limits{
			MaxFlows:            512,
			IdleTimeout:         10 * time.Minute,
			MaxBufferedSegments: 64,
			MaxBufferedBytes:    1 << 18,
		},
		MaxPending: 64,
	}

	t.Run("byte-corruption-lenient", func(t *testing.T) {
		// Damage ~0.5% of records: half with framing-destroying smashes
		// (the capture length field), half with random single-byte flips
		// that can land anywhere, payload included.
		corrupted := append([]byte(nil), data...)
		rng := rand.New(rand.NewSource(2015))
		nSmash := nRecords / 400
		for i := 0; i < nSmash; i++ {
			off := offsets[rng.Intn(nRecords)]
			corrupted[off+29] = 0xFF
			corrupted[off+30] = 0xFF
		}
		nFlip := nRecords / 400
		for i := 0; i < nFlip; i++ {
			pos := 8 + rng.Intn(len(corrupted)-8)
			corrupted[pos] ^= byte(1 + rng.Intn(255))
		}
		t.Logf("corrupted %d records (%d smashed, %d flipped bytes)", nSmash+nFlip, nSmash, nFlip)

		lr, err := wire.NewReaderOptions(bytes.NewReader(corrupted),
			wire.ReaderOptions{Lenient: true, MaxResyncs: 1 << 20})
		if err != nil {
			t.Fatal(err)
		}
		col, a := analyzeBounded(t, lr, lim)
		got := len(col.Transactions)
		rs := lr.Stats()
		ts := a.TableStats()
		t.Logf("lenient: %d/%d transactions, reader %+v, table %+v, analyzer %+v",
			got, clean, rs, ts, a.Stats())
		if got < clean*90/100 {
			t.Errorf("recovered %d/%d transactions (<90%%) at ≤1%% record corruption", got, clean)
		}
		if got > clean*105/100 {
			t.Errorf("fabricated transactions: %d vs clean %d", got, clean)
		}
		if rs.Resyncs == 0 {
			t.Error("framing was smashed but the reader reports no resyncs")
		}
		if got < clean && rs.SkippedBytes == 0 && ts.Gaps == 0 && a.Stats().ParseErrors == 0 {
			t.Error("transactions were lost but no degradation counter accounts for them")
		}

		// Strict mode must refuse the same bytes rather than mis-read them.
		sr, err := wire.NewReader(bytes.NewReader(corrupted))
		if err != nil {
			t.Fatal(err)
		}
		var strictErr error
		for strictErr == nil {
			_, strictErr = sr.Read()
		}
		if strictErr == io.EOF {
			t.Error("strict reader absorbed corrupted framing silently")
		}
	})

	t.Run("packet-faults-bounded", func(t *testing.T) {
		r, err := wire.NewReader(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		fr := wire.NewFaultReader(r, wire.FaultOptions{
			Seed: 42, DropRate: 0.01, DupRate: 0.03, ReorderRate: 0.03, CorruptRate: 0.005,
		})
		col, a := analyzeBounded(t, fr, lim)
		if a.NumActive() != 0 {
			t.Errorf("NumActive = %d after Finish", a.NumActive())
		}
		got := len(col.Transactions)
		fs := fr.Stats()
		t.Logf("faulted: %d/%d transactions, faults %+v, table %+v", got, clean, fs, a.TableStats())
		if fs.Dropped == 0 || fs.Duplicated == 0 || fs.Reordered == 0 {
			t.Fatalf("fault injector idle: %+v", fs)
		}
		if got < clean*80/100 {
			t.Errorf("recovered %d/%d transactions under 1%%/3%%/3%% drop/dup/reorder", got, clean)
		}
		if got > clean*110/100 {
			t.Errorf("transaction inflation out of bounds: %d vs %d", got, clean)
		}
	})
}
