package analyzer

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"adscape/internal/wire"
)

// snapFixture emits several interleaved HTTP and TLS connections whose
// lifetimes straddle any mid-stream split: open connections, buffered partial
// headers, and requests awaiting responses all exist at the split point.
func snapFixture(t *testing.T) []*wire.Packet {
	t.Helper()
	var pkts []*wire.Packet
	out := func(p *wire.Packet) error { pkts = append(pkts, p); return nil }
	for c := 0; c < 8; c++ {
		em := wire.NewConnEmitter(out, 0x0A000001+uint32(c%3), uint16(7000+c), 0x0B000001+uint32(c%4), 80, 25e6, uint32(500*c+11))
		start := int64(c+1) * 1e9
		est, err := em.Open(start)
		if err != nil {
			t.Fatal(err)
		}
		if c%4 == 3 {
			if err := em.OpaquePayload(est, 800, 9000); err != nil {
				t.Fatal(err)
			}
			if err := em.Close(est + 6e9); err != nil {
				t.Fatal(err)
			}
			continue
		}
		for q := 0; q < 2+c%2; q++ {
			reqT := est + int64(q)*150e6
			req := httpReq("GET", fmt.Sprintf("h%d.example", c%5), fmt.Sprintf("/r%d-%d", c, q), "http://h0.example/", "UA/1.0")
			if err := em.Request(reqT, req); err != nil {
				t.Fatal(err)
			}
			// Responses lag far behind, so requests are pending at splits.
			if err := em.Response(reqT+500e6, httpResp(200, "text/html", 256, ""), 256); err != nil {
				t.Fatal(err)
			}
		}
		if err := em.Close(start + int64(5+c%4)*1e9); err != nil {
			t.Fatal(err)
		}
	}
	sort.SliceStable(pkts, func(i, j int) bool { return pkts[i].Time < pkts[j].Time })
	return pkts
}

// TestAnalyzerSnapshotRestoreContinuity is checkpointing's core invariant at
// the analyzer layer: restore a mid-stream snapshot and the continuation
// emits exactly the records the uninterrupted analyzer emits, at every split
// point.
func TestAnalyzerSnapshotRestoreContinuity(t *testing.T) {
	pkts := snapFixture(t)
	ref := &Collector{}
	a := New(ref)
	for _, p := range pkts {
		a.Add(p)
	}
	a.Finish()
	refStats := a.Stats()
	refTable := a.TableStats()

	for _, split := range []int{1, len(pkts) / 4, len(pkts) / 2, 3 * len(pkts) / 4, len(pkts) - 1} {
		col1 := &Collector{}
		a1 := New(col1)
		for _, p := range pkts[:split] {
			a1.Add(p)
		}
		snap := a1.Snapshot()
		col2 := &Collector{}
		a2, err := Restore(col2, Limits{}, snap)
		if err != nil {
			t.Fatalf("split %d: %v", split, err)
		}
		// Pre-split emissions carry over via the snapshot's collector in a
		// real checkpoint; here we compare only the continuation.
		emitted := len(col1.Transactions)
		emittedTLS := len(col1.Flows)
		for _, p := range pkts[split:] {
			a1.Add(p)
			a2.Add(p)
		}
		a1.Finish()
		a2.Finish()

		if got, want := len(col2.Transactions), len(col1.Transactions)-emitted; got != want {
			t.Fatalf("split %d: restored emitted %d transactions, original %d", split, got, want)
		}
		for i, tx := range col2.Transactions {
			if !reflect.DeepEqual(*tx, *col1.Transactions[emitted+i]) {
				t.Errorf("split %d: transaction %d differs:\n got %+v\nwant %+v", split, i, *tx, *col1.Transactions[emitted+i])
			}
		}
		if got, want := len(col2.Flows), len(col1.Flows)-emittedTLS; got != want {
			t.Fatalf("split %d: restored emitted %d TLS flows, original %d", split, got, want)
		}
		for i, f := range col2.Flows {
			if !reflect.DeepEqual(*f, *col1.Flows[emittedTLS+i]) {
				t.Errorf("split %d: TLS flow %d differs", split, i)
			}
		}
		if a1.Stats() != a2.Stats() {
			t.Errorf("split %d: stats diverged: original %+v restored %+v", split, a1.Stats(), a2.Stats())
		}
		if a1.Stats() != refStats || a1.TableStats() != refTable {
			t.Errorf("split %d: split run diverged from uninterrupted reference", split)
		}
	}
}

// TestAnalyzerSnapshotIsFrozen guards the deep copy: mutating the analyzer
// after Snapshot must not leak into the snapshot (pending transactions are
// mutated in place when their responses arrive).
func TestAnalyzerSnapshotIsFrozen(t *testing.T) {
	pkts := snapFixture(t)
	// Find a split with requests still awaiting their responses.
	var (
		snap    *Snapshot
		split   int
		pending int
	)
	a := New(&Collector{})
	for i, p := range pkts {
		a.Add(p)
		s := a.Snapshot()
		n := 0
		for _, c := range s.Conns {
			n += len(c.Pending)
		}
		if n > pending {
			snap, split, pending = s, i+1, n
		}
	}
	if pending == 0 {
		t.Fatal("bad fixture: no split has pending requests")
	}
	a = New(&Collector{})
	for _, p := range pkts[:split] {
		a.Add(p)
	}
	snap = a.Snapshot()
	before := make([]int64, 0, pending)
	for _, c := range snap.Conns {
		for _, tx := range c.Pending {
			before = append(before, tx.RespTime)
		}
	}
	for _, p := range pkts[split:] {
		a.Add(p)
	}
	a.Finish()
	i := 0
	for _, c := range snap.Conns {
		for _, tx := range c.Pending {
			if tx.RespTime != before[i] {
				t.Fatal("continuing the analyzer mutated the snapshot's pending transactions")
			}
			i++
		}
	}
}

func TestAnalyzerRestoreRejectsBadFlowIndex(t *testing.T) {
	a := New(&Collector{})
	snap := a.Snapshot()
	snap.Conns = append(snap.Conns, ConnSnapshot{Flow: 3})
	if _, err := Restore(&Collector{}, Limits{}, snap); err == nil {
		t.Error("out-of-range flow index must fail")
	}
}
