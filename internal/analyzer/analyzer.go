// Package analyzer extracts HTTP transactions from packet-header traces,
// filling the role of the paper's (extended) Bro HTTP analyzer (§3.1): it
// reassembles TCP flows, parses request and response headers, pairs them per
// connection, and emits weblog records carrying Host, URI, Referer,
// Content-Type, Content-Length, Location, User-Agent and both handshake
// timestamps. Port-443 flows are summarized as opaque TLS flows (§5).
package analyzer

import (
	"bytes"
	"strconv"
	"strings"

	"adscape/internal/intern"
	"adscape/internal/obs"
	"adscape/internal/weblog"
	"adscape/internal/wire"
)

// Sink receives the analyzer's outputs as the trace streams through.
type Sink interface {
	// HTTP delivers one completed (or half-observed) transaction.
	HTTP(t *weblog.Transaction)
	// TLS delivers one HTTPS flow summary at flow close.
	TLS(f *weblog.TLSFlow)
}

// Stats counts analyzer-level aggregates, matching Table 2's per-trace rows,
// plus the degradation counters of a bounded run.
type Stats struct {
	// Packets is the number of packets processed.
	Packets int
	// HTTPTransactions counts emitted HTTP transactions.
	HTTPTransactions int
	// TLSFlows counts summarized HTTPS flows.
	TLSFlows int
	// SNIFlows counts TLS flows whose summary carries a parsed SNI hostname
	// — the denominator-vs-numerator gap is the trace's SNI coverage.
	SNIFlows int
	// HTTPWireBytes sums wire payload volume on port-80 flows (Table 2's
	// "HTTPbytes").
	HTTPWireBytes uint64
	// ParseErrors counts request/response blocks that failed to parse.
	ParseErrors int
	// PendingEvicted counts requests force-flushed (emitted without their
	// response) because a connection exceeded Limits.MaxPending unanswered
	// requests. They still count as transactions — the request reached the
	// wire — but their response fields are empty.
	PendingEvicted int
	// InterimResponses counts 1xx status lines (100 Continue, 103 Early
	// Hints, ...). Interim responses are informational: the final response
	// for the same request follows on the same connection (RFC 7231 §6.2),
	// so they must not consume the pending request — doing so shifted the
	// pairing of every later transaction on the connection.
	InterimResponses int
	// OrphanResponses counts final responses that arrived with no pending
	// request on the connection (loss, or capture started mid-flow). They
	// are emitted as response-only transactions.
	OrphanResponses int
}

// Merge folds another analyzer's counters into s. Every field is a sum over
// disjoint work, so summing the per-shard stats of a flow-partitioned run
// reproduces exactly what one analyzer over the whole trace would report.
func (s *Stats) Merge(o Stats) {
	s.Packets += o.Packets
	s.HTTPTransactions += o.HTTPTransactions
	s.TLSFlows += o.TLSFlows
	s.SNIFlows += o.SNIFlows
	s.HTTPWireBytes += o.HTTPWireBytes
	s.ParseErrors += o.ParseErrors
	s.PendingEvicted += o.PendingEvicted
	s.InterimResponses += o.InterimResponses
	s.OrphanResponses += o.OrphanResponses
}

// Metrics is the analyzer's live obs instrumentation: atomic mirrors of the
// Stats counters (plus the pairing-anomaly breakdown) that a debug endpoint
// can read mid-run, which the Stats struct — owned by the shard goroutine and
// only published at barriers — cannot provide. All handles may be nil
// (NewMetrics over a nil registry), in which case every update no-ops; the
// deterministic Stats always count regardless.
type Metrics struct {
	Packets      *obs.Counter
	Transactions *obs.Counter
	TLSFlows     *obs.Counter
	// SNIFlows mirrors Stats.SNIFlows: TLS flows summarized with a parsed
	// SNI hostname.
	SNIFlows         *obs.Counter
	ParseErrors      *obs.Counter
	PendingEvicted   *obs.Counter
	InterimResponses *obs.Counter
	OrphanResponses  *obs.Counter
	// PairLatency is the request→response header latency (§8.2's HTTP
	// handshake) in nanoseconds, observed at pairing time.
	PairLatency *obs.Histogram
	// Wire carries the flow-table/reassembly handles; SetObs forwards it to
	// the analyzer's table so one Metrics instruments the whole ingest stage.
	Wire *wire.Metrics
}

// NewMetrics resolves the analyzer's metric handles in reg; reg may be nil,
// yielding no-op handles. Shards may share one registry (the counters are
// atomic) or hold private registries and merge snapshots — both yield the
// same totals.
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		Packets:          reg.Counter("analyzer.packets"),
		Transactions:     reg.Counter("analyzer.http_transactions"),
		TLSFlows:         reg.Counter("analyzer.tls_flows"),
		SNIFlows:         reg.Counter("analyzer.sni_flows"),
		ParseErrors:      reg.Counter("analyzer.parse_errors"),
		PendingEvicted:   reg.Counter("analyzer.pending_evicted"),
		InterimResponses: reg.Counter("analyzer.interim_responses"),
		OrphanResponses:  reg.Counter("analyzer.orphan_responses"),
		PairLatency:      reg.Histogram("analyzer.pair_latency_ns", obs.ExpBuckets(1e6, 4, 12)),
		Wire:             wire.NewMetrics(reg),
	}
}

// Limits bounds the analyzer's memory. The zero value imposes no bounds
// (legacy behavior); DefaultLimits is the production configuration.
type Limits struct {
	// Table bounds the underlying TCP flow table.
	Table wire.Limits
	// MaxPending caps the unanswered pipelined requests buffered per
	// connection; the oldest is force-flushed past the cap. 0 = unlimited.
	MaxPending int
	// DisableIntern turns off the header-string dedup pool applied to every
	// emitted transaction. Dedup never changes a value — it only collapses
	// duplicates and un-pins header-block backing buffers — so this exists
	// for A/B memory measurement (the bench baseline), not correctness.
	DisableIntern bool
}

// DefaultLimits returns production defaults for the analyzer: the flow-table
// defaults plus a generous pipelining cap (browsers pipeline a handful of
// requests; hundreds of unanswered requests mean the responses are not
// coming).
func DefaultLimits() Limits {
	return Limits{Table: wire.DefaultLimits(), MaxPending: 256}
}

// Analyzer is the streaming HTTP/TLS extractor.
type Analyzer struct {
	sink   Sink
	table  *wire.FlowTable
	stats  Stats
	conns  map[*wire.Flow]*connState
	limits Limits
	obs    *Metrics
	// pool dedups header strings on every emitted transaction. Each parsed
	// field aliases its whole header block (strings.Split keeps the backing
	// array alive), so without dedup one retained Referer pins the full
	// block; the pool's copies cost len(s) bytes once per distinct value.
	// Nil when Limits.DisableIntern is set.
	pool *intern.Table
}

// connState is the per-flow HTTP parser state.
type connState struct {
	buf     [2]bytes.Buffer
	reqTime [2]int64 // time of first buffered byte per direction
	// pending holds requests awaiting their response, FIFO (HTTP/1.1
	// pipelining and persistent connections).
	pending []*weblog.Transaction
	tls     bool
	// sni is the server_name parsed from the flow's ClientHello; sniDone
	// latches once the verdict (found, absent, or unparseable) is final, so
	// the opaque bulk of the flow costs nothing.
	sni     string
	sniDone bool
}

// New creates an unbounded Analyzer feeding sink (legacy behavior,
// equivalent to NewWithLimits with a zero Limits).
func New(sink Sink) *Analyzer {
	return NewWithLimits(sink, Limits{})
}

// NewWithLimits creates an Analyzer bounded by lim.
func NewWithLimits(sink Sink, lim Limits) *Analyzer {
	a := &Analyzer{sink: sink, conns: make(map[*wire.Flow]*connState), limits: lim, obs: NewMetrics(nil)}
	if !lim.DisableIntern {
		a.pool = intern.NewTable(0)
	}
	a.table = wire.NewFlowTableLimits(a, lim.Table)
	return a
}

// emit dedups the transaction's strings and hands it to the sink; every
// transaction leaves the analyzer through here.
func (a *Analyzer) emit(tx *weblog.Transaction) {
	weblog.DedupStrings(a.pool, tx)
	a.sink.HTTP(tx)
}

// InternStats reports the header-dedup pool counters (hits, misses, resident
// pooled bytes); zeros when interning is disabled.
func (a *Analyzer) InternStats() (hits, misses, bytes int64) {
	return a.pool.Stats()
}

// SetObs attaches live instrumentation; nil restores the no-op default.
// Call before feeding packets.
func (a *Analyzer) SetObs(m *Metrics) {
	if m == nil {
		m = NewMetrics(nil)
	}
	a.obs = m
	a.table.SetObs(m.Wire)
}

// Stats returns the running aggregates.
func (a *Analyzer) Stats() Stats { return a.stats }

// TableStats returns the flow table's degradation counters.
func (a *Analyzer) TableStats() wire.TableStats { return a.table.Stats() }

// NumActive returns the number of flows currently tracked, which never
// exceeds Limits.Table.MaxFlows when that cap is set.
func (a *Analyzer) NumActive() int { return a.table.NumActive() }

// Add processes one packet.
func (a *Analyzer) Add(p *wire.Packet) {
	a.stats.Packets++
	a.obs.Packets.Inc()
	a.table.Add(p)
}

// Finish flushes open flows; call once at end of trace.
func (a *Analyzer) Finish() { a.table.Flush() }

// FlowEstablished implements wire.FlowHandler.
func (a *Analyzer) FlowEstablished(f *wire.Flow) {
	a.conns[f] = &connState{tls: f.ServerPort == 443}
}

// Data implements wire.FlowHandler.
func (a *Analyzer) Data(f *wire.Flow, dir wire.Dir, t int64, payload []byte, gap bool) {
	cs := a.conns[f]
	if cs == nil {
		return
	}
	if cs.tls {
		// TLS payload is opaque except for the cleartext ClientHello at the
		// head of the client stream, which carries the SNI hostname — the
		// only per-flow domain signal an encrypted-era trace offers.
		a.sniffSNI(cs, dir, payload, gap)
		return // flow summary happens at close
	}
	b := &cs.buf[dir]
	if gap {
		// Bytes were lost: drop the partial block and resync at the next
		// start line.
		b.Reset()
		cs.reqTime[dir] = 0
	}
	if b.Len() == 0 {
		cs.reqTime[dir] = t
	}
	b.Write(payload)
	a.drain(f, cs, dir)
}

// sniffSNI accumulates the client-direction head of a TLS flow until the
// ClientHello parser reaches a final verdict (server name, SNI absent, or
// unparseable). The reassembly buffer is bounded by the parser's give-up
// threshold and released the moment the verdict latches, so the opaque bulk
// of the flow — and every server-direction byte — costs nothing.
func (a *Analyzer) sniffSNI(cs *connState, dir wire.Dir, payload []byte, gap bool) {
	if cs.sniDone || dir != wire.ClientToServer {
		return
	}
	b := &cs.buf[wire.ClientToServer]
	if gap {
		// Head bytes were lost; the hello cannot be reassembled anymore.
		cs.sniDone = true
		b.Reset()
		return
	}
	b.Write(payload)
	sni, done := wire.ParseClientHelloSNI(b.Bytes())
	if done {
		cs.sni = sni
		cs.sniDone = true
		b.Reset()
	}
}

// drain parses as many complete header blocks as the buffer holds.
func (a *Analyzer) drain(f *wire.Flow, cs *connState, dir wire.Dir) {
	b := &cs.buf[dir]
	for {
		raw := b.Bytes()
		// Resynchronize: the block must start at a plausible start line.
		if dir == wire.ClientToServer && !startsWithRequestLine(raw) ||
			dir == wire.ServerToClient && !startsWithStatusLine(raw) {
			if i := bytes.Index(raw, []byte("\r\n")); i >= 0 {
				if len(raw) > i+2 {
					b.Next(i + 2)
					continue
				}
			}
			if len(raw) > wire.SnapLen*4 {
				b.Reset() // runaway garbage
			}
			return
		}
		end := bytes.Index(raw, []byte("\r\n\r\n"))
		if end < 0 {
			return
		}
		block := string(raw[:end])
		b.Next(end + 4)
		blockTime := cs.reqTime[dir]
		if b.Len() == 0 {
			cs.reqTime[dir] = 0
		}
		if dir == wire.ClientToServer {
			a.onRequest(f, cs, block, blockTime)
		} else {
			a.onResponse(f, cs, block, blockTime)
		}
	}
}

// httpMethods are the request-line prefixes the resynchronizer accepts; the
// trailing space keeps e.g. "GETTY" from matching. maxMethodLen is the length
// of the longest entry, bounding the wait-for-more-bytes window below.
var httpMethods = [...]string{"GET ", "POST ", "HEAD ", "PUT ", "DELETE ", "OPTIONS ", "CONNECT ", "PATCH ", "TRACE "}

const maxMethodLen = 8 // len("OPTIONS ") == len("CONNECT ")

func startsWithRequestLine(raw []byte) bool {
	for _, m := range httpMethods {
		if bytes.HasPrefix(raw, []byte(m)) {
			return true
		}
	}
	// Not yet enough bytes to decide? Wait for more only if the content so
	// far is a prefix of some method.
	if len(raw) < maxMethodLen {
		for _, m := range httpMethods {
			if bytes.HasPrefix([]byte(m), raw) {
				return true
			}
		}
	}
	return false
}

func startsWithStatusLine(raw []byte) bool {
	if bytes.HasPrefix(raw, []byte("HTTP/1.")) {
		return true
	}
	return len(raw) < 7 && bytes.HasPrefix([]byte("HTTP/1."), raw)
}

func (a *Analyzer) onRequest(f *wire.Flow, cs *connState, block string, t int64) {
	lines := strings.Split(block, "\r\n")
	parts := strings.SplitN(lines[0], " ", 3)
	if len(parts) != 3 || !strings.HasPrefix(parts[2], "HTTP/1.") {
		a.stats.ParseErrors++
		a.obs.ParseErrors.Inc()
		return
	}
	tx := &weblog.Transaction{
		ReqTime:       t,
		ClientIP:      f.ClientIP,
		ServerIP:      f.ServerIP,
		ServerPort:    f.ServerPort,
		Method:        parts[0],
		URI:           parts[1],
		ContentLength: -1,
		TCPRTT:        -1,
	}
	if rtt, ok := f.HandshakeRTT(); ok {
		tx.TCPRTT = rtt
	}
	for _, ln := range lines[1:] {
		key, val, ok := splitHeader(ln)
		if !ok {
			continue
		}
		switch key {
		case "host":
			tx.Host = val
		case "referer":
			tx.Referer = val
		case "user-agent":
			tx.UserAgent = val
		}
	}
	cs.pending = append(cs.pending, tx)
	// Bounded pipelining: past the cap the oldest request's response is not
	// coming (loss, one-sided capture). Flush it request-only so the work is
	// counted, not silently held forever.
	if a.limits.MaxPending > 0 && len(cs.pending) > a.limits.MaxPending {
		old := cs.pending[0]
		cs.pending = cs.pending[1:]
		a.stats.PendingEvicted++
		a.stats.HTTPTransactions++
		a.obs.PendingEvicted.Inc()
		a.obs.Transactions.Inc()
		a.emit(old)
	}
}

func (a *Analyzer) onResponse(f *wire.Flow, cs *connState, block string, t int64) {
	lines := strings.Split(block, "\r\n")
	parts := strings.SplitN(lines[0], " ", 3)
	if len(parts) < 2 {
		a.stats.ParseErrors++
		a.obs.ParseErrors.Inc()
		return
	}
	status, err := strconv.Atoi(parts[1])
	if err != nil {
		a.stats.ParseErrors++
		a.obs.ParseErrors.Inc()
		return
	}
	if status >= 100 && status < 200 {
		// Interim response (100 Continue, 103 Early Hints): informational,
		// the final response for the same request is still to come on this
		// connection (RFC 7231 §6.2). Consuming the pending request here —
		// the old behavior — paired the real final response with the *next*
		// pipelined request and corrupted every later pairing on the
		// connection. Keep the request queued; just count the sighting.
		a.stats.InterimResponses++
		a.obs.InterimResponses.Inc()
		return
	}
	var tx *weblog.Transaction
	if len(cs.pending) > 0 {
		tx = cs.pending[0]
		cs.pending = cs.pending[1:]
	} else {
		// Response without an observed request (loss or mid-stream flow).
		a.stats.OrphanResponses++
		a.obs.OrphanResponses.Inc()
		tx = &weblog.Transaction{
			ClientIP:      f.ClientIP,
			ServerIP:      f.ServerIP,
			ServerPort:    f.ServerPort,
			ContentLength: -1,
			TCPRTT:        -1,
		}
	}
	tx.RespTime = t
	tx.Status = status
	for _, ln := range lines[1:] {
		key, val, ok := splitHeader(ln)
		if !ok {
			continue
		}
		switch key {
		case "content-type":
			tx.ContentType = val
		case "content-length":
			if n, err := strconv.ParseInt(val, 10, 64); err == nil {
				tx.ContentLength = n
			}
		case "location":
			tx.Location = val
		}
	}
	a.stats.HTTPTransactions++
	a.obs.Transactions.Inc()
	if ns, ok := tx.HTTPHandshake(); ok {
		a.obs.PairLatency.Observe(ns)
	}
	a.emit(tx)
}

func splitHeader(line string) (key, val string, ok bool) {
	i := strings.IndexByte(line, ':')
	if i <= 0 {
		return "", "", false
	}
	return strings.ToLower(strings.TrimSpace(line[:i])), strings.TrimSpace(line[i+1:]), true
}

// FlowClosed implements wire.FlowHandler.
func (a *Analyzer) FlowClosed(f *wire.Flow) {
	cs := a.conns[f]
	delete(a.conns, f)
	if cs == nil {
		return
	}
	if cs.tls {
		tf := &weblog.TLSFlow{
			Time:       f.FirstTime,
			ClientIP:   f.ClientIP,
			ServerIP:   f.ServerIP,
			ServerPort: f.ServerPort,
			Bytes:      f.WireBytes[0] + f.WireBytes[1],
			TCPRTT:     -1,
			SNI:        cs.sni,
		}
		if rtt, ok := f.HandshakeRTT(); ok {
			tf.TCPRTT = rtt
		}
		weblog.DedupTLS(a.pool, tf)
		a.stats.TLSFlows++
		a.obs.TLSFlows.Inc()
		if tf.SNI != "" {
			a.stats.SNIFlows++
			a.obs.SNIFlows.Inc()
		}
		a.sink.TLS(tf)
		return
	}
	if f.ServerPort == 80 {
		a.stats.HTTPWireBytes += f.WireBytes[0] + f.WireBytes[1]
	}
	// Requests that never saw a response are still transactions the
	// measurement counts (the request reached the wire).
	for _, tx := range cs.pending {
		a.stats.HTTPTransactions++
		a.obs.Transactions.Inc()
		a.emit(tx)
	}
}

// Collector is a Sink that retains everything in memory, convenient for
// tests and moderate traces.
type Collector struct {
	Transactions []*weblog.Transaction
	Flows        []*weblog.TLSFlow
}

// HTTP implements Sink.
func (c *Collector) HTTP(t *weblog.Transaction) { c.Transactions = append(c.Transactions, t) }

// TLS implements Sink.
func (c *Collector) TLS(f *weblog.TLSFlow) { c.Flows = append(c.Flows, f) }

// AnalyzeTrace runs a whole trace reader through a fresh unbounded Analyzer
// and returns the collected results.
func AnalyzeTrace(r *wire.Reader) (*Collector, Stats, error) {
	return AnalyzeTraceLimits(r, Limits{})
}

// AnalyzeTraceLimits runs a whole trace reader through a fresh Analyzer
// bounded by lim and returns the collected results.
func AnalyzeTraceLimits(r *wire.Reader, lim Limits) (*Collector, Stats, error) {
	col := &Collector{}
	a := NewWithLimits(col, lim)
	err := r.ForEach(func(p *wire.Packet) error {
		a.Add(p)
		return nil
	})
	a.Finish()
	return col, a.Stats(), err
}
