package analyzer

import (
	"adscape/internal/weblog"
)

// LogSink streams analyzer output straight into weblog writers, so huge
// traces never accumulate in memory — the production path of the pipeline
// (the Collector exists for tests and in-memory analysis).
type LogSink struct {
	// HTTPLog receives transactions; nil drops them.
	HTTPLog *weblog.Writer
	// TLSLog receives HTTPS flow summaries; nil drops them.
	TLSLog *weblog.TLSWriter
	// Truncate applies the §5 privacy step (URL → FQDN) before writing.
	Truncate bool
	// Err holds the first write error; once set, writing stops.
	Err error
	// HTTPCount / TLSCount count written records.
	HTTPCount, TLSCount int
}

// HTTP implements Sink.
func (s *LogSink) HTTP(t *weblog.Transaction) {
	if s.Err != nil || s.HTTPLog == nil {
		return
	}
	if s.Truncate {
		cp := *t
		cp.Truncate()
		t = &cp
	}
	if err := s.HTTPLog.Write(t); err != nil {
		s.Err = err
		return
	}
	s.HTTPCount++
}

// TLS implements Sink.
func (s *LogSink) TLS(f *weblog.TLSFlow) {
	if s.Err != nil || s.TLSLog == nil {
		return
	}
	if err := s.TLSLog.Write(f); err != nil {
		s.Err = err
		return
	}
	s.TLSCount++
}

// Flush flushes both logs and returns the first error encountered.
func (s *LogSink) Flush() error {
	if s.HTTPLog != nil {
		if err := s.HTTPLog.Flush(); err != nil && s.Err == nil {
			s.Err = err
		}
	}
	if s.TLSLog != nil {
		if err := s.TLSLog.Flush(); err != nil && s.Err == nil {
			s.Err = err
		}
	}
	return s.Err
}
