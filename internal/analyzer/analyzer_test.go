package analyzer

import (
	"fmt"
	"math/rand"
	"testing"

	"adscape/internal/weblog"
	"adscape/internal/wire"
)

// httpReq renders a request header block.
func httpReq(method, host, uri, referer, ua string) []byte {
	s := fmt.Sprintf("%s %s HTTP/1.1\r\nHost: %s\r\n", method, uri, host)
	if referer != "" {
		s += "Referer: " + referer + "\r\n"
	}
	if ua != "" {
		s += "User-Agent: " + ua + "\r\n"
	}
	return []byte(s + "\r\n")
}

// httpResp renders a response header block.
func httpResp(status int, ctype string, clen int64, location string) []byte {
	s := fmt.Sprintf("HTTP/1.1 %d X\r\n", status)
	if ctype != "" {
		s += "Content-Type: " + ctype + "\r\n"
	}
	if clen >= 0 {
		s += fmt.Sprintf("Content-Length: %d\r\n", clen)
	}
	if location != "" {
		s += "Location: " + location + "\r\n"
	}
	return []byte(s + "\r\n")
}

func TestAnalyzerSingleTransaction(t *testing.T) {
	col := &Collector{}
	a := New(col)
	emit := func(p *wire.Packet) error { a.Add(p); return nil }
	c := wire.NewConnEmitter(emit, 101, 5000, 202, 80, 30e6, 1000)
	est, err := c.Open(1e9)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Request(est, httpReq("GET", "www.example.com", "/index.html?a=1", "", "UA/1.0")); err != nil {
		t.Fatal(err)
	}
	if err := c.Response(est+50e6, httpResp(200, "text/html", 5120, ""), 5120); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(est + 100e6); err != nil {
		t.Fatal(err)
	}
	a.Finish()

	if len(col.Transactions) != 1 {
		t.Fatalf("transactions = %d, want 1", len(col.Transactions))
	}
	tx := col.Transactions[0]
	if tx.Method != "GET" || tx.Host != "www.example.com" || tx.URI != "/index.html?a=1" {
		t.Errorf("request fields: %+v", tx)
	}
	if tx.Status != 200 || tx.ContentType != "text/html" || tx.ContentLength != 5120 {
		t.Errorf("response fields: %+v", tx)
	}
	if tx.UserAgent != "UA/1.0" {
		t.Errorf("user agent: %q", tx.UserAgent)
	}
	if tx.URL() != "http://www.example.com/index.html?a=1" {
		t.Errorf("URL() = %q", tx.URL())
	}
	if tx.TCPRTT != 30e6 {
		t.Errorf("TCP RTT = %d, want 30ms", tx.TCPRTT)
	}
	hh, ok := tx.HTTPHandshake()
	if !ok || hh != 50e6 {
		t.Errorf("HTTP handshake = %d ok=%v, want 50ms", hh, ok)
	}
	if a.Stats().ParseErrors != 0 {
		t.Errorf("parse errors: %d", a.Stats().ParseErrors)
	}
}

func TestAnalyzerPersistentConnectionPipeline(t *testing.T) {
	col := &Collector{}
	a := New(col)
	emit := func(p *wire.Packet) error { a.Add(p); return nil }
	c := wire.NewConnEmitter(emit, 101, 5001, 202, 80, 10e6, 500)
	est, _ := c.Open(1e9)
	// Three transactions on one connection, bodies truncated away.
	for i := 0; i < 3; i++ {
		t0 := est + int64(i)*100e6
		if err := c.Request(t0, httpReq("GET", "cdn.example", fmt.Sprintf("/obj%d.js", i), "http://www.example.com/", "UA")); err != nil {
			t.Fatal(err)
		}
		if err := c.Response(t0+20e6, httpResp(200, "application/javascript", int64(1000*(i+1)), ""), int64(1000*(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	c.Close(est + 400e6)
	a.Finish()

	if len(col.Transactions) != 3 {
		t.Fatalf("transactions = %d, want 3", len(col.Transactions))
	}
	for i, tx := range col.Transactions {
		if tx.URI != fmt.Sprintf("/obj%d.js", i) {
			t.Errorf("tx %d URI = %q (pairing broken)", i, tx.URI)
		}
		if tx.ContentLength != int64(1000*(i+1)) {
			t.Errorf("tx %d content length = %d", i, tx.ContentLength)
		}
		if tx.Referer != "http://www.example.com/" {
			t.Errorf("tx %d referer = %q", i, tx.Referer)
		}
		// Persistent connection: all transactions share the flow's RTT.
		if tx.TCPRTT != 10e6 {
			t.Errorf("tx %d RTT = %d", i, tx.TCPRTT)
		}
	}
}

func TestAnalyzerRedirectLocation(t *testing.T) {
	col := &Collector{}
	a := New(col)
	emit := func(p *wire.Packet) error { a.Add(p); return nil }
	c := wire.NewConnEmitter(emit, 101, 5002, 203, 80, 5e6, 1)
	est, _ := c.Open(1e9)
	c.Request(est, httpReq("GET", "redir.example", "/r?to=x", "http://pub.example/", "UA"))
	c.Response(est+8e6, httpResp(302, "text/html", 0, "http://ads.example/banner.gif"), 0)
	c.Close(est + 20e6)
	a.Finish()
	if len(col.Transactions) != 1 {
		t.Fatalf("transactions = %d", len(col.Transactions))
	}
	if col.Transactions[0].Location != "http://ads.example/banner.gif" {
		t.Errorf("location = %q", col.Transactions[0].Location)
	}
	if col.Transactions[0].Status != 302 {
		t.Errorf("status = %d", col.Transactions[0].Status)
	}
}

// interimResp renders a bare 1xx interim status block (no body follows;
// RFC 7231 §6.2 interim responses are header-only).
func interimResp(status int) []byte {
	return []byte(fmt.Sprintf("HTTP/1.1 %d Interim\r\n\r\n", status))
}

func TestAnalyzer100ContinuePairing(t *testing.T) {
	// POST with Expect: 100-continue: the server sends "100 Continue", then
	// the final "201 Created". The 100 must not consume the pending request;
	// the final response pairs with the POST.
	col := &Collector{}
	a := New(col)
	emit := func(p *wire.Packet) error { a.Add(p); return nil }
	c := wire.NewConnEmitter(emit, 101, 5010, 210, 80, 5e6, 1)
	est, _ := c.Open(1e9)
	c.Request(est, httpReq("POST", "api.example", "/upload", "", "UA"))
	c.Response(est+5e6, interimResp(100), 0)
	c.Response(est+40e6, httpResp(201, "application/json", 17, ""), 17)
	c.Close(est + 60e6)
	a.Finish()

	if len(col.Transactions) != 1 {
		t.Fatalf("transactions = %d, want 1", len(col.Transactions))
	}
	tx := col.Transactions[0]
	if tx.Method != "POST" || tx.URI != "/upload" {
		t.Errorf("request fields: %+v", tx)
	}
	if tx.Status != 201 || tx.ContentLength != 17 {
		t.Errorf("final response must pair with the POST, got status=%d clen=%d", tx.Status, tx.ContentLength)
	}
	if got := a.Stats().InterimResponses; got != 1 {
		t.Errorf("InterimResponses = %d, want 1", got)
	}
	if got := a.Stats().OrphanResponses; got != 0 {
		t.Errorf("OrphanResponses = %d, want 0 (the 100 must not orphan the 201)", got)
	}
}

func TestAnalyzerInterimOnPipelinedConnection(t *testing.T) {
	// Three pipelined requests; the second is answered with a 103 Early
	// Hints before its final 200. Before the fix the 103 consumed request 2,
	// shifting every later pairing on the connection by one.
	col := &Collector{}
	a := New(col)
	emit := func(p *wire.Packet) error { a.Add(p); return nil }
	c := wire.NewConnEmitter(emit, 101, 5011, 211, 80, 5e6, 1)
	est, _ := c.Open(1e9)
	for i := 0; i < 3; i++ {
		if err := c.Request(est+int64(i)*2e6, httpReq("GET", "pipelined.example", fmt.Sprintf("/obj%d", i), "", "UA")); err != nil {
			t.Fatal(err)
		}
	}
	c.Response(est+10e6, httpResp(200, "text/html", 1000, ""), 1000)
	c.Response(est+12e6, interimResp(103), 0)
	c.Response(est+20e6, httpResp(200, "text/css", 2000, ""), 2000)
	c.Response(est+30e6, httpResp(200, "image/gif", 3000, ""), 3000)
	c.Close(est + 50e6)
	a.Finish()

	if len(col.Transactions) != 3 {
		t.Fatalf("transactions = %d, want 3", len(col.Transactions))
	}
	wantLen := []int64{1000, 2000, 3000}
	for i, tx := range col.Transactions {
		if tx.URI != fmt.Sprintf("/obj%d", i) || tx.ContentLength != wantLen[i] {
			t.Errorf("tx %d: uri=%q clen=%d, want /obj%d clen=%d (pairing shifted by interim response)",
				i, tx.URI, tx.ContentLength, i, wantLen[i])
		}
		if tx.Status != 200 {
			t.Errorf("tx %d: status = %d, want 200", i, tx.Status)
		}
	}
	if got := a.Stats().InterimResponses; got != 1 {
		t.Errorf("InterimResponses = %d, want 1", got)
	}
	if got := a.Stats().HTTPTransactions; got != 3 {
		t.Errorf("HTTPTransactions = %d, want 3 (interim responses are not transactions)", got)
	}
}

func TestAnalyzerMultipleInterimResponses(t *testing.T) {
	// 100 and 103 may both precede one final response; none of them may
	// dequeue the request.
	col := &Collector{}
	a := New(col)
	emit := func(p *wire.Packet) error { a.Add(p); return nil }
	c := wire.NewConnEmitter(emit, 101, 5012, 212, 80, 5e6, 1)
	est, _ := c.Open(1e9)
	c.Request(est, httpReq("POST", "api.example", "/big", "", "UA"))
	c.Response(est+2e6, interimResp(100), 0)
	c.Response(est+4e6, interimResp(103), 0)
	c.Response(est+50e6, httpResp(200, "text/plain", 2, ""), 2)
	c.Close(est + 80e6)
	a.Finish()
	if len(col.Transactions) != 1 {
		t.Fatalf("transactions = %d, want 1", len(col.Transactions))
	}
	if col.Transactions[0].Status != 200 {
		t.Errorf("status = %d, want 200", col.Transactions[0].Status)
	}
	if got := a.Stats().InterimResponses; got != 2 {
		t.Errorf("InterimResponses = %d, want 2", got)
	}
}

func TestAnalyzerOrphanResponseCounted(t *testing.T) {
	// A final response with no pending request (mid-stream capture) is
	// emitted response-only and counted as an orphan.
	col := &Collector{}
	a := New(col)
	emit := func(p *wire.Packet) error { a.Add(p); return nil }
	c := wire.NewConnEmitter(emit, 101, 5013, 213, 80, 5e6, 1)
	est, _ := c.Open(1e9)
	c.Response(est+10e6, httpResp(200, "text/html", 500, ""), 500)
	c.Close(est + 20e6)
	a.Finish()
	if len(col.Transactions) != 1 {
		t.Fatalf("transactions = %d, want 1", len(col.Transactions))
	}
	if col.Transactions[0].Method != "" || col.Transactions[0].Status != 200 {
		t.Errorf("orphan response fields: %+v", col.Transactions[0])
	}
	if got := a.Stats().OrphanResponses; got != 1 {
		t.Errorf("OrphanResponses = %d, want 1", got)
	}
}

func TestAnalyzerTLSFlowSummary(t *testing.T) {
	col := &Collector{}
	a := New(col)
	emit := func(p *wire.Packet) error { a.Add(p); return nil }
	c := wire.NewConnEmitter(emit, 101, 5003, 204, 443, 40e6, 77)
	est, _ := c.Open(1e9)
	if err := c.OpaquePayload(est, 2000, 50000); err != nil {
		t.Fatal(err)
	}
	c.Close(est + 1e9)
	a.Finish()
	if len(col.Flows) != 1 {
		t.Fatalf("TLS flows = %d, want 1", len(col.Flows))
	}
	f := col.Flows[0]
	if f.ServerPort != 443 || f.ServerIP != 204 {
		t.Errorf("flow endpoints: %+v", f)
	}
	if f.Bytes != 52000 {
		t.Errorf("flow bytes = %d, want 52000", f.Bytes)
	}
	if f.TCPRTT != 40e6 {
		t.Errorf("flow RTT = %d", f.TCPRTT)
	}
	if len(col.Transactions) != 0 {
		t.Error("TLS flows must not produce HTTP transactions")
	}
}

func TestAnalyzerInterleavedConnections(t *testing.T) {
	// Packets of many connections interleaved arbitrarily must pair
	// correctly per flow.
	col := &Collector{}
	a := New(col)
	var pkts []*wire.Packet
	capture := func(p *wire.Packet) error { pkts = append(pkts, p); return nil }
	for i := 0; i < 10; i++ {
		c := wire.NewConnEmitter(capture, uint32(300+i), uint16(6000+i), 400, 80, 15e6, uint32(i*1000))
		est, _ := c.Open(1e9 + int64(i)*1e6)
		c.Request(est, httpReq("GET", fmt.Sprintf("h%d.example", i), fmt.Sprintf("/p%d", i), "", "UA"))
		c.Response(est+30e6, httpResp(200, "image/gif", 43, ""), 43)
		c.Close(est + 60e6)
	}
	rng := rand.New(rand.NewSource(3))
	// Shuffle within a window to simulate multiplexed capture order while
	// keeping per-flow causality (stable because windows are small).
	clientOf := func(p *wire.Packet) uint32 {
		if p.SrcIP != 400 {
			return p.SrcIP
		}
		return p.DstIP
	}
	for w := 0; w+4 < len(pkts); w += 4 {
		rng.Shuffle(4, func(i, j int) {
			// Only swap packets of different flows to preserve per-flow order.
			if clientOf(pkts[w+i]) != clientOf(pkts[w+j]) {
				pkts[w+i], pkts[w+j] = pkts[w+j], pkts[w+i]
			}
		})
	}
	for _, p := range pkts {
		a.Add(p)
	}
	a.Finish()
	if len(col.Transactions) != 10 {
		t.Fatalf("transactions = %d, want 10", len(col.Transactions))
	}
	seen := map[string]bool{}
	for _, tx := range col.Transactions {
		seen[tx.Host+tx.URI] = true
	}
	if len(seen) != 10 {
		t.Errorf("distinct transactions = %d, want 10", len(seen))
	}
}

func TestAnalyzerRequestWithoutResponse(t *testing.T) {
	col := &Collector{}
	a := New(col)
	emit := func(p *wire.Packet) error { a.Add(p); return nil }
	c := wire.NewConnEmitter(emit, 101, 5005, 205, 80, 5e6, 1)
	est, _ := c.Open(1e9)
	c.Request(est, httpReq("GET", "dead.example", "/hang", "", "UA"))
	// No response; trace ends.
	a.Finish()
	if len(col.Transactions) != 1 {
		t.Fatalf("transactions = %d, want 1 (request-only)", len(col.Transactions))
	}
	tx := col.Transactions[0]
	if tx.Status != 0 || tx.RespTime != 0 {
		t.Errorf("unanswered request should have zero response fields: %+v", tx)
	}
	if _, ok := tx.HTTPHandshake(); ok {
		t.Error("HTTP handshake must be unavailable without response")
	}
}

func TestAnalyzerLargeHeaderSplitAcrossSegments(t *testing.T) {
	col := &Collector{}
	a := New(col)
	emit := func(p *wire.Packet) error { a.Add(p); return nil }
	c := wire.NewConnEmitter(emit, 101, 5006, 206, 80, 5e6, 1)
	est, _ := c.Open(1e9)
	longRef := "http://pub.example/" + string(make([]byte, 0, 2000))
	for i := 0; i < 2000; i++ {
		longRef += "a"
	}
	c.Request(est, httpReq("GET", "big.example", "/x", longRef, "UA"))
	c.Response(est+10e6, httpResp(200, "text/html", 100, ""), 100)
	c.Close(est + 20e6)
	a.Finish()
	if len(col.Transactions) != 1 {
		t.Fatalf("transactions = %d, want 1", len(col.Transactions))
	}
	if len(col.Transactions[0].Referer) != len(longRef) {
		t.Errorf("referer truncated: %d vs %d", len(col.Transactions[0].Referer), len(longRef))
	}
}

func TestStatsHTTPWireBytes(t *testing.T) {
	col := &Collector{}
	a := New(col)
	emit := func(p *wire.Packet) error { a.Add(p); return nil }
	c := wire.NewConnEmitter(emit, 101, 5007, 207, 80, 5e6, 1)
	est, _ := c.Open(1e9)
	req := httpReq("GET", "x.example", "/", "", "UA")
	resp := httpResp(200, "text/html", 10000, "")
	c.Request(est, req)
	c.Response(est+10e6, resp, 10000)
	c.Close(est + 30e6)
	a.Finish()
	want := uint64(len(req) + len(resp) + 10000)
	if got := a.Stats().HTTPWireBytes; got != want {
		t.Errorf("HTTPWireBytes = %d, want %d", got, want)
	}
}

func TestTransactionTruncatePrivacy(t *testing.T) {
	tx := &weblog.Transaction{
		Host:    "www.example.com",
		URI:     "/secret/path?user=alice",
		Referer: "http://pub.example/private/page?session=1",
	}
	tx.Truncate()
	if tx.URI != "/" {
		t.Errorf("URI not truncated: %q", tx.URI)
	}
	if tx.Referer != "http://pub.example/" {
		t.Errorf("Referer not truncated: %q", tx.Referer)
	}
}
