package analyzer

import (
	"fmt"
	"math/rand"
	"testing"

	"adscape/internal/wire"
)

// buildWorkload emits nConns connections with nTx transactions each and
// returns the packet stream.
func buildWorkload(t *testing.T, nConns, nTx int) []*wire.Packet {
	t.Helper()
	var pkts []*wire.Packet
	capture := func(p *wire.Packet) error { pkts = append(pkts, p); return nil }
	for c := 0; c < nConns; c++ {
		em := wire.NewConnEmitter(capture, uint32(5000+c), uint16(40000+c), 600, 80, 15e6, uint32(c*7))
		est, err := em.Open(int64(c+1) * 1e9)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < nTx; i++ {
			t0 := est + int64(i)*80e6
			req := httpReq("GET", fmt.Sprintf("h%03d.example", c), fmt.Sprintf("/o/%d", i), "", "UA")
			if err := em.Request(t0, req); err != nil {
				t.Fatal(err)
			}
			if err := em.Response(t0+25e6, httpResp(200, "image/gif", 4096, ""), 4096); err != nil {
				t.Fatal(err)
			}
		}
		em.Close(est + int64(nTx)*80e6 + 1e9)
	}
	return pkts
}

// TestAnalyzerSurvivesPacketLoss injects random packet loss: the analyzer
// must not crash, must not fabricate transactions, and must still recover
// the bulk of the traffic — passive monitors always see imperfect captures.
func TestAnalyzerSurvivesPacketLoss(t *testing.T) {
	pkts := buildWorkload(t, 40, 8)
	want := 40 * 8
	for _, lossRate := range []float64{0.001, 0.01, 0.05} {
		rng := rand.New(rand.NewSource(int64(lossRate * 1e6)))
		col := &Collector{}
		a := New(col)
		dropped := 0
		for _, p := range pkts {
			if rng.Float64() < lossRate {
				dropped++
				continue
			}
			a.Add(p)
		}
		a.Finish()
		got := len(col.Transactions)
		if got > want {
			t.Errorf("loss %.3f: fabricated transactions: %d > %d", lossRate, got, want)
		}
		// Losing one packet can kill at most a handful of transactions on
		// its connection; demand a sane floor.
		minOK := int(float64(want) * (1 - 12*lossRate))
		if got < minOK {
			t.Errorf("loss %.3f (dropped %d packets): recovered %d/%d transactions, floor %d",
				lossRate, dropped, got, want, minOK)
		}
		for _, tx := range col.Transactions {
			if tx.Host == "" && tx.Status == 0 {
				t.Errorf("loss %.3f: empty transaction emitted", lossRate)
			}
		}
	}
}

// TestAnalyzerSurvivesDuplication doubles random packets; duplicates must
// not double-count transactions.
func TestAnalyzerSurvivesDuplication(t *testing.T) {
	pkts := buildWorkload(t, 20, 5)
	rng := rand.New(rand.NewSource(4))
	col := &Collector{}
	a := New(col)
	for _, p := range pkts {
		a.Add(p)
		if rng.Float64() < 0.2 {
			a.Add(p)
		}
	}
	a.Finish()
	if got, want := len(col.Transactions), 20*5; got != want {
		t.Errorf("duplication changed transaction count: %d != %d", got, want)
	}
}

// TestAnalyzerGarbagePayload feeds non-HTTP payloads on port 80; the parser
// must skip them without emitting bogus transactions.
func TestAnalyzerGarbagePayload(t *testing.T) {
	col := &Collector{}
	a := New(col)
	emit := func(p *wire.Packet) error { a.Add(p); return nil }
	em := wire.NewConnEmitter(emit, 1, 40000, 2, 80, 10e6, 1)
	est, _ := em.Open(1e9)
	garbage := []byte("\x16\x03\x01\x02\x00random bytes that are not HTTP at all\r\nstill not a request\r\n\r\n")
	if err := em.Request(est, garbage); err != nil {
		t.Fatal(err)
	}
	// A valid exchange afterwards must still parse (resynchronization).
	if err := em.Request(est+50e6, httpReq("GET", "ok.example", "/fine", "", "UA")); err != nil {
		t.Fatal(err)
	}
	if err := em.Response(est+80e6, httpResp(200, "text/html", 10, ""), 10); err != nil {
		t.Fatal(err)
	}
	em.Close(est + 200e6)
	a.Finish()
	if len(col.Transactions) != 1 {
		t.Fatalf("transactions = %d, want exactly the valid one", len(col.Transactions))
	}
	if col.Transactions[0].Host != "ok.example" {
		t.Errorf("recovered wrong transaction: %+v", col.Transactions[0])
	}
}

// TestAnalyzerTruncatedTrace stops mid-flow; pending requests must still be
// flushed as request-only transactions without panics.
func TestAnalyzerTruncatedTrace(t *testing.T) {
	pkts := buildWorkload(t, 10, 4)
	for _, cut := range []int{1, len(pkts) / 3, len(pkts) - 1} {
		col := &Collector{}
		a := New(col)
		for _, p := range pkts[:cut] {
			a.Add(p)
		}
		a.Finish()
		for _, tx := range col.Transactions {
			if tx.Method != "" && tx.Host == "" {
				t.Errorf("cut %d: transaction with method but no host", cut)
			}
		}
	}
}
