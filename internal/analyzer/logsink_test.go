package analyzer

import (
	"bytes"
	"testing"

	"adscape/internal/weblog"
	"adscape/internal/wire"
)

func TestLogSinkStreams(t *testing.T) {
	var httpBuf, tlsBuf bytes.Buffer
	hw, err := weblog.NewWriter(&httpBuf)
	if err != nil {
		t.Fatal(err)
	}
	tw, err := weblog.NewTLSWriter(&tlsBuf)
	if err != nil {
		t.Fatal(err)
	}
	sink := &LogSink{HTTPLog: hw, TLSLog: tw, Truncate: true}
	a := New(sink)
	emit := func(p *wire.Packet) error { a.Add(p); return nil }

	c := wire.NewConnEmitter(emit, 11, 41000, 22, 80, 10e6, 1)
	est, _ := c.Open(1e9)
	c.Request(est, httpReq("GET", "www.x.example", "/secret/page?u=1", "http://ref.example/private", "UA"))
	c.Response(est+20e6, httpResp(200, "text/html", 100, ""), 100)
	c.Close(est + 100e6)

	s := wire.NewConnEmitter(emit, 11, 41001, 33, 443, 10e6, 2)
	est2, _ := s.Open(2e9)
	s.OpaquePayload(est2, 1000, 30000)
	s.Close(est2 + 1e9)
	a.Finish()
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	if sink.HTTPCount != 1 || sink.TLSCount != 1 {
		t.Fatalf("counts: http=%d tls=%d", sink.HTTPCount, sink.TLSCount)
	}

	// The HTTP log round-trips and is privacy-truncated.
	txs, err := weblog.NewReader(&httpBuf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(txs) != 1 {
		t.Fatalf("transactions = %d", len(txs))
	}
	if txs[0].URI != "/" {
		t.Errorf("URI not truncated: %q", txs[0].URI)
	}
	if txs[0].Referer != "http://ref.example/" {
		t.Errorf("referer not truncated: %q", txs[0].Referer)
	}

	// The TLS log round-trips.
	flows, err := weblog.NewTLSReader(&tlsBuf).ReadAllTLS()
	if err != nil {
		t.Fatal(err)
	}
	if len(flows) != 1 || flows[0].ServerIP != 33 || flows[0].Bytes != 31000 {
		t.Fatalf("flows: %+v", flows)
	}
}

func TestTLSLogRejectsMalformed(t *testing.T) {
	r := weblog.NewTLSReader(bytes.NewReader([]byte("1\t2\t3\n")))
	if _, err := r.Read(); err == nil {
		t.Error("malformed TLS line must error")
	}
}
