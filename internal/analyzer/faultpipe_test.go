package analyzer

import (
	"bytes"
	"io"
	"testing"
	"time"

	"adscape/internal/wire"
)

// serializeTrace writes packets in wire format and returns the encoded trace.
func serializeTrace(t *testing.T, pkts []*wire.Packet) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := wire.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pkts {
		if err := w.Write(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// runFaulted streams a trace through a FaultReader into a bounded analyzer,
// asserting the flow-table cap after every packet.
func runFaulted(t *testing.T, trace []byte, fopt wire.FaultOptions, lim Limits) (*Collector, *Analyzer) {
	t.Helper()
	r, err := wire.NewReader(bytes.NewReader(trace))
	if err != nil {
		t.Fatal(err)
	}
	fr := wire.NewFaultReader(r, fopt)
	col := &Collector{}
	a := NewWithLimits(col, lim)
	for {
		p, err := fr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		a.Add(p)
		if cap := lim.Table.MaxFlows; cap > 0 && a.NumActive() > cap {
			t.Fatalf("NumActive %d exceeds cap %d", a.NumActive(), cap)
		}
	}
	a.Finish()
	if a.NumActive() != 0 {
		t.Errorf("NumActive = %d after Finish", a.NumActive())
	}
	return col, a
}

// TestPipelineUnderInjectedFaults runs the full reader→flow-table→HTTP
// pipeline under seeded fault profiles. Invariants: no panic, the live-flow
// cap holds at every step, duplicates fabricate nothing, and Table-2-style
// transaction counts degrade proportionally to the injected fault rate.
func TestPipelineUnderInjectedFaults(t *testing.T) {
	trace := serializeTrace(t, buildWorkload(t, 40, 8))
	const want = 40 * 8
	lim := Limits{
		Table: wire.Limits{
			MaxFlows:            16,
			IdleTimeout:         30 * time.Second,
			MaxBufferedSegments: 64,
			MaxBufferedBytes:    1 << 16,
		},
		MaxPending: 16,
	}

	// ceil allows a bounded inflation for reordering profiles: a data packet
	// displaced past its flow's FIN splits one transaction into a
	// request-only plus a response-only record. Both are backed by real wire
	// bytes — the split is a degradation, not fabrication — but it must stay
	// proportional to the reorder rate.
	cases := []struct {
		name        string
		opt         wire.FaultOptions
		floor, ceil int // bounds on recovered transactions
	}{
		{"drop-1pct", wire.FaultOptions{Seed: 1, DropRate: 0.01}, want * 85 / 100, want},
		{"dup-10pct", wire.FaultOptions{Seed: 2, DupRate: 0.10}, want, want},
		{"reorder-10pct", wire.FaultOptions{Seed: 3, ReorderRate: 0.10}, want * 95 / 100, want * 110 / 100},
		{"corrupt-1pct", wire.FaultOptions{Seed: 4, CorruptRate: 0.01}, want * 90 / 100, want},
		{"truncate-1pct", wire.FaultOptions{Seed: 5, TruncateRate: 0.01}, want * 90 / 100, want},
		{"mid-stream", wire.FaultOptions{Seed: 6, SkipFirst: 200}, 0, want},
		{"everything", wire.FaultOptions{Seed: 7, DropRate: 0.01, DupRate: 0.05,
			ReorderRate: 0.05, CorruptRate: 0.005, TruncateRate: 0.005}, want * 75 / 100, want * 105 / 100},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			col, a := runFaulted(t, trace, tc.opt, lim)
			got := len(col.Transactions)
			if got > tc.ceil {
				t.Errorf("fabricated transactions: %d > %d", got, tc.ceil)
			}
			if got < tc.floor {
				t.Errorf("recovered %d/%d transactions, floor %d (faults %+v)",
					got, want, tc.floor, a.Stats())
			}
			for _, tx := range col.Transactions {
				if tx.Host == "" && tx.Status == 0 {
					t.Error("empty transaction emitted")
				}
			}
		})
	}
}

// TestPipelineCapEvictionAccounted drops every FIN so flows leak, then
// checks the cap holds and the evictions show up in the counters instead of
// disappearing.
func TestPipelineCapEvictionAccounted(t *testing.T) {
	pkts := buildWorkload(t, 30, 2)
	var noFIN []*wire.Packet
	for _, p := range pkts {
		if p.HasFlag(wire.FlagFIN) {
			continue
		}
		noFIN = append(noFIN, p)
	}
	trace := serializeTrace(t, noFIN)
	lim := Limits{Table: wire.Limits{MaxFlows: 5}, MaxPending: 8}
	col, a := runFaulted(t, trace, wire.FaultOptions{Seed: 1}, lim)
	ts := a.TableStats()
	if ts.EvictedCap == 0 {
		t.Errorf("30 leaked flows under a cap of 5, but EvictedCap = 0")
	}
	if got, want := len(col.Transactions), 30*2; got != want {
		t.Errorf("transactions = %d, want %d (evicted flows must flush their work)", got, want)
	}
}

// TestPipelineIdleEvictionAccounted leaks flows the slow way: no FINs, long
// gaps between connections, and only the idle timeout to reclaim them.
func TestPipelineIdleEvictionAccounted(t *testing.T) {
	pkts := buildWorkload(t, 10, 2)
	var noFIN []*wire.Packet
	for _, p := range pkts {
		if p.HasFlag(wire.FlagFIN) {
			continue
		}
		noFIN = append(noFIN, p)
	}
	trace := serializeTrace(t, noFIN)
	// Connections start 1 s apart; a 2 s idle timeout reclaims each flow a
	// couple of connections after it goes quiet.
	lim := Limits{Table: wire.Limits{IdleTimeout: 2 * time.Second}}
	col, a := runFaulted(t, trace, wire.FaultOptions{Seed: 1}, lim)
	if a.TableStats().EvictedIdle == 0 {
		t.Error("no idle evictions on a trace of abandoned flows")
	}
	if got, want := len(col.Transactions), 10*2; got != want {
		t.Errorf("transactions = %d, want %d", got, want)
	}
}

// TestPendingCapForceFlushes floods one connection with requests that never
// get responses: the per-connection pending buffer must stay bounded and the
// overflow must be flushed as counted, request-only transactions.
func TestPendingCapForceFlushes(t *testing.T) {
	var pkts []*wire.Packet
	capture := func(p *wire.Packet) error { pkts = append(pkts, p); return nil }
	em := wire.NewConnEmitter(capture, 1, 40000, 2, 80, 10e6, 1)
	est, err := em.Open(1e9)
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	for i := 0; i < n; i++ {
		if err := em.Request(est+int64(i)*1e6, httpReq("GET", "one-sided.example", "/r", "", "UA")); err != nil {
			t.Fatal(err)
		}
	}
	trace := serializeTrace(t, pkts)
	lim := Limits{MaxPending: 8}
	col, a := runFaulted(t, trace, wire.FaultOptions{}, lim)
	st := a.Stats()
	if st.PendingEvicted != n-8 {
		t.Errorf("PendingEvicted = %d, want %d", st.PendingEvicted, n-8)
	}
	if len(col.Transactions) != n {
		t.Errorf("transactions = %d, want all %d requests counted", len(col.Transactions), n)
	}
}

// TestRequestLineMethods pins the resynchronizer's method list: PATCH and
// TRACE requests are real transactions, not garbage to be resynced away.
func TestRequestLineMethods(t *testing.T) {
	col := &Collector{}
	a := New(col)
	emit := func(p *wire.Packet) error { a.Add(p); return nil }
	em := wire.NewConnEmitter(emit, 1, 40000, 2, 80, 10e6, 1)
	est, err := em.Open(1e9)
	if err != nil {
		t.Fatal(err)
	}
	methods := []string{"GET", "POST", "HEAD", "PUT", "DELETE", "OPTIONS", "PATCH", "TRACE"}
	for i, m := range methods {
		t0 := est + int64(i)*50e6
		if err := em.Request(t0, httpReq(m, "api.example", "/ep", "", "UA")); err != nil {
			t.Fatal(err)
		}
		if err := em.Response(t0+10e6, httpResp(200, "text/plain", 2, ""), 2); err != nil {
			t.Fatal(err)
		}
	}
	em.Close(est + 1e9)
	a.Finish()
	if len(col.Transactions) != len(methods) {
		t.Fatalf("transactions = %d, want %d", len(col.Transactions), len(methods))
	}
	for i, tx := range col.Transactions {
		if tx.Method != methods[i] {
			t.Errorf("transaction %d method = %q, want %q", i, tx.Method, methods[i])
		}
		if tx.Status != 200 {
			t.Errorf("method %s lost its response pairing", methods[i])
		}
	}
	// The prefix-wait logic must hold for a PATCH split mid-method across
	// segments: "PAT" alone is a plausible prefix, not garbage.
	if !startsWithRequestLine([]byte("PAT")) {
		t.Error("partial PATCH prefix rejected instead of awaiting more bytes")
	}
	if !startsWithRequestLine([]byte("TRACE ")) || !startsWithRequestLine([]byte("PATCH /x HTTP/1.1")) {
		t.Error("full PATCH/TRACE request lines rejected")
	}
	if startsWithRequestLine([]byte("TRACEROUTE output:")) {
		t.Error("non-method prefix accepted")
	}
}
