package analyzer

import (
	"fmt"

	"adscape/internal/weblog"
	"adscape/internal/wire"
)

// Snapshot is an Analyzer's complete mutable state: the running aggregates,
// the flow table (flows, reassembly buffers, eviction clock), and the
// per-connection HTTP parser state. Restoring a snapshot and feeding the
// remaining packets produces exactly the output the original analyzer would
// have produced uninterrupted — the invariant checkpoint/resume depends on.
// All fields are exported plain data so encoding/gob can serialize it.
type Snapshot struct {
	Stats Stats
	Table *wire.TableSnapshot
	// Conns holds the per-connection parser states; Flow indexes into
	// Table.Flows.
	Conns []ConnSnapshot
}

// ConnSnapshot is one connection's HTTP parser state.
type ConnSnapshot struct {
	// Flow is the index of the owning flow in the table snapshot.
	Flow int
	// Buf holds the partially accumulated header block per direction.
	Buf [2][]byte
	// ReqTime is the timestamp of the first buffered byte per direction.
	ReqTime [2]int64
	// Pending are the requests awaiting their responses, FIFO.
	Pending []*weblog.Transaction
	// TLS marks an opaque HTTPS connection.
	TLS bool
	// SNI and SNIDone carry the ClientHello sniff state: the parsed server
	// name and whether the verdict has latched. Without them a flow whose
	// hello was consumed before the snapshot would lose its SNI on resume.
	SNI     string
	SNIDone bool
}

// Snapshot captures the analyzer's state. Pending transactions and buffered
// bytes are deep-copied: the analyzer mutates pending requests when their
// responses arrive, and the snapshot must stay frozen at capture time.
func (a *Analyzer) Snapshot() *Snapshot {
	tsnap, flows := a.table.Snapshot()
	snap := &Snapshot{Stats: a.stats, Table: tsnap}
	for i, f := range flows {
		cs := a.conns[f]
		if cs == nil {
			continue
		}
		c := ConnSnapshot{
			Flow: i,
			Buf: [2][]byte{
				append([]byte(nil), cs.buf[0].Bytes()...),
				append([]byte(nil), cs.buf[1].Bytes()...),
			},
			ReqTime: cs.reqTime,
			TLS:     cs.tls,
			SNI:     cs.sni,
			SNIDone: cs.sniDone,
		}
		for _, tx := range cs.pending {
			cp := *tx
			c.Pending = append(c.Pending, &cp)
		}
		snap.Conns = append(snap.Conns, c)
	}
	return snap
}

// Restore rebuilds an Analyzer from a snapshot, bounded by lim and feeding
// sink. No sink or handler callbacks fire during restore; the first packet
// fed afterwards continues exactly where the snapshot was taken. lim must
// match the limits the snapshotted analyzer ran under, or eviction decisions
// diverge from the uninterrupted run.
func Restore(sink Sink, lim Limits, snap *Snapshot) (*Analyzer, error) {
	a := &Analyzer{sink: sink, conns: make(map[*wire.Flow]*connState), limits: lim, stats: snap.Stats, obs: NewMetrics(nil)}
	table, flows := wire.RestoreFlowTable(a, lim.Table, snap.Table)
	a.table = table
	for _, c := range snap.Conns {
		if c.Flow < 0 || c.Flow >= len(flows) {
			return nil, fmt.Errorf("analyzer: snapshot conn references flow %d of %d", c.Flow, len(flows))
		}
		cs := &connState{reqTime: c.ReqTime, tls: c.TLS, sni: c.SNI, sniDone: c.SNIDone}
		cs.buf[0].Write(c.Buf[0])
		cs.buf[1].Write(c.Buf[1])
		for _, tx := range c.Pending {
			cp := *tx
			cs.pending = append(cs.pending, &cp)
		}
		a.conns[flows[c.Flow]] = cs
	}
	return a, nil
}
