// Command rbnsim generates a synthetic residential-broadband-network packet
// header trace (the stand-in for the paper's RBN-1 / RBN-2 captures) and
// writes it in the wire format.
//
// Usage:
//
//	rbnsim -preset rbn2 -scale 0.01 -o rbn2.trace [-gt rbn2.groundtruth]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"

	"adscape/internal/rbn"
	"adscape/internal/webgen"
	"adscape/internal/wire"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rbnsim: ")
	var (
		preset = flag.String("preset", "rbn2", "trace preset: rbn1 or rbn2")
		scale  = flag.Float64("scale", 0.01, "household population scale (1.0 = paper size)")
		out    = flag.String("o", "", "output trace file (required)")
		gtOut  = flag.String("gt", "", "optional ground-truth TSV (device configurations)")
		sites  = flag.Int("sites", 1000, "synthetic site catalog size")
		seed   = flag.Int64("seed", 2015, "world generation seed")
		https  = flag.Float64("https-share", 0, "encrypted-era knob: per-object HTTPS probability override (0 keeps 2015-era defaults; 0.95 models a modern TLS-dominant trace)")
		par    = flag.Int("parallel", runtime.GOMAXPROCS(0), "device-generation workers (output is identical for any value)")
	)
	flag.Parse()
	if *out == "" {
		flag.Usage()
		os.Exit(2)
	}

	wopt := webgen.DefaultOptions()
	wopt.NumSites = *sites
	wopt.Seed = *seed
	if *https < 0 || *https > 1 {
		log.Fatalf("-https-share must be in [0,1], got %g", *https)
	}
	wopt.HTTPSShare = *https
	world, err := webgen.NewWorld(wopt)
	if err != nil {
		log.Fatalf("building world: %v", err)
	}
	opt, err := rbn.Preset(*preset, world, *scale)
	if err != nil {
		log.Fatal(err)
	}
	opt.Parallelism = *par

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	w, err := wire.NewWriter(f)
	if err != nil {
		log.Fatal(err)
	}
	res, err := rbn.Simulate(opt, w.Write)
	if err != nil {
		log.Fatalf("simulating: %v", err)
	}
	if err := w.Flush(); err != nil {
		log.Fatalf("flushing trace: %v", err)
	}
	log.Printf("%s: %d households, %d devices, %d pages, %d packets -> %s",
		opt.Name, opt.Households, len(res.Devices), res.Pages, res.Packets, *out)

	if *gtOut != "" {
		g, err := os.Create(*gtOut)
		if err != nil {
			log.Fatal(err)
		}
		defer g.Close()
		fmt.Fprintln(g, "#client_ip\tfamily\tsetup\thousehold\tuser_agent")
		for _, d := range res.Devices {
			fmt.Fprintf(g, "%d\t%s\t%s\t%d\t%s\n", d.ClientIP, d.Family, d.Setup, d.Household, d.UserAgent)
		}
		log.Printf("ground truth -> %s", *gtOut)
	}
}
