// Command adshard coordinates a distributed adtrace run: it partitions a
// trace set across N adtrace worker subprocesses, supervises them with
// per-worker failure/retry accounting, reduces their partial-results files
// with the merge algebra, and prints the combined report — byte-identical to
// a single-process `adtrace -workers` run over the same input (DESIGN.md
// §13).
//
// Usage:
//
//	adshard [-n 3] [-workers N] [-adtrace path] [-split auto|time|files]
//	        [-retries 1] [-work dir] [-keep]
//	        [-seed 2015] [-sites 1000] [-strict] [-max-flows N]
//	        [-idle-timeout 10m] [-max-pending N] [-verdict-cache N]
//	        [-users] [-threshold 300] [-weblog out.log] [-fail-degraded F]
//	        trace [trace ...]
//
// With a single trace, -split time cuts it into -n flow-complete partitions
// by capture-time span (every connection stays whole in the partition where
// it opened, so each worker's analysis is exact). With multiple traces,
// -split files assigns one worker per file. -split auto (the default) picks
// time for one input and files for several.
//
// Every worker runs `adtrace -emit-partial` with the same analysis
// configuration (seed, sites, -workers shard count, ingest limits), so the
// partials carry identical fingerprints and per-shard accumulators that sum
// index-by-index into exactly the single-process shard state. A worker that
// exits non-zero is retried up to -retries times; the per-worker attempt
// ledger is reported on stderr. The reduce validates the set (format
// version, fingerprints, disjoint complete coverage) before merging.
//
// Exit codes:
//
//	0  completed
//	1  fatal error (a worker failed after its retry budget, unreadable
//	   input, report failure)
//	2  usage error
//	3  completed but degraded beyond the -fail-degraded threshold
//	7  partial-results rejection (corrupt, foreign version, overlapping,
//	   incompatible fingerprint, or incomplete partials); the message names
//	   the offending file
package main

import (
	"flag"
	"fmt"
	"hash/fnv"
	"io"
	"log"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strconv"
	"sync"
	"time"

	"adscape/internal/abp"
	"adscape/internal/analyzer"
	"adscape/internal/partial"
	"adscape/internal/report"
	"adscape/internal/webgen"
	"adscape/internal/wire"
)

const exitPartialRejected = 7

type config struct {
	n        int
	workers  int
	adtrace  string
	split    string
	retries  int
	workDir  string
	keep     bool
	killIdx  int // -test-kill-worker: kill this worker's first attempt
	seed     int64
	sites    int
	strict   bool
	maxFlows int
	idleTO   time.Duration
	maxPend  int
	vcache   int

	users        bool
	threshold    int
	weblogOut    string
	failDegraded float64
}

// job is one worker subprocess's assignment: analyze one trace partition
// into one partial file.
type job struct {
	index int
	trace string
	out   string
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("adshard: ")
	var cfg config
	flag.IntVar(&cfg.n, "n", 3, "worker subprocesses (and, with -split time, partitions)")
	flag.IntVar(&cfg.workers, "workers", runtime.GOMAXPROCS(0), "per-worker analyzer shard count (forwarded to every adtrace)")
	flag.StringVar(&cfg.adtrace, "adtrace", "", "adtrace binary to exec (default: next to this binary, else $PATH)")
	flag.StringVar(&cfg.split, "split", "auto", "partitioning: time (capture-time spans of one trace), files (one worker per trace), auto")
	flag.IntVar(&cfg.retries, "retries", 1, "retries per failed worker before the run fails")
	flag.StringVar(&cfg.workDir, "work", "", "working directory for split traces and partials (default: a temp dir, removed on exit)")
	flag.BoolVar(&cfg.keep, "keep", false, "keep the working directory (for debugging the partials)")
	flag.IntVar(&cfg.killIdx, "test-kill-worker", -1, "testing: SIGKILL this worker's first attempt mid-run to exercise retry")
	flag.Int64Var(&cfg.seed, "seed", 2015, "world seed (must match the generator's)")
	flag.IntVar(&cfg.sites, "sites", 1000, "world site catalog size (must match)")
	flag.BoolVar(&cfg.strict, "strict", false, "fail fast on corrupt records and disable memory bounds")
	flag.IntVar(&cfg.maxFlows, "max-flows", wire.DefaultLimits().MaxFlows, "live-flow cap per worker (0 = unlimited)")
	flag.DurationVar(&cfg.idleTO, "idle-timeout", wire.DefaultLimits().IdleTimeout, "evict flows idle this long on the packet clock (0 = never)")
	flag.IntVar(&cfg.maxPend, "max-pending", analyzer.DefaultLimits().MaxPending, "per-connection unanswered-request cap (0 = unlimited)")
	flag.IntVar(&cfg.vcache, "verdict-cache", abp.DefaultVerdictCacheEntries, "engine verdict-cache entries (0 = disable memoization)")
	flag.BoolVar(&cfg.users, "users", false, "print per-user ad-blocker inference")
	flag.IntVar(&cfg.threshold, "threshold", 300, "active-user request threshold")
	flag.StringVar(&cfg.weblogOut, "weblog", "", "optionally dump the merged HTTP transaction log")
	flag.Float64Var(&cfg.failDegraded, "fail-degraded", -1, "exit 3 when the merged degraded fraction exceeds this (-1 = off)")
	flag.Parse()
	os.Exit(run(cfg, flag.Args()))
}

func run(cfg config, traces []string) int {
	usageError := func(format string, args ...any) int {
		log.Printf(format, args...)
		flag.Usage()
		return 2
	}
	if len(traces) == 0 {
		return usageError("at least one trace argument is required")
	}
	if cfg.n <= 0 {
		return usageError("-n must be positive, got %d", cfg.n)
	}
	if cfg.workers <= 0 {
		return usageError("-workers must be positive, got %d", cfg.workers)
	}
	if cfg.retries < 0 {
		return usageError("-retries must be non-negative, got %d", cfg.retries)
	}
	mode := cfg.split
	if mode == "auto" {
		if len(traces) == 1 {
			mode = "time"
		} else {
			mode = "files"
		}
	}
	switch mode {
	case "time":
		if len(traces) != 1 {
			return usageError("-split time partitions exactly one trace, got %d", len(traces))
		}
	case "files":
	default:
		return usageError("-split must be auto, time, or files, got %q", cfg.split)
	}
	adtrace, err := findAdtrace(cfg.adtrace)
	if err != nil {
		log.Print(err)
		return 1
	}

	workDir := cfg.workDir
	if workDir == "" {
		dir, err := os.MkdirTemp("", "adshard-*")
		if err != nil {
			log.Print(err)
			return 1
		}
		workDir = dir
		if !cfg.keep {
			defer os.RemoveAll(dir)
		}
	} else if err := os.MkdirAll(workDir, 0o755); err != nil {
		log.Print(err)
		return 1
	}

	jobs, err := buildJobs(mode, traces, cfg.n, workDir)
	if err != nil {
		log.Print(err)
		return 1
	}
	setID := splitSetID(jobs)
	log.Printf("split job %s: %d partitions, %s mode, up to %d concurrent workers", setID, len(jobs), mode, cfg.n)

	if code := runJobs(cfg, adtrace, setID, jobs); code != 0 {
		return code
	}

	paths := make([]string, len(jobs))
	for i, j := range jobs {
		paths[i] = j.out
	}
	return reduceAndReport(cfg, paths)
}

// findAdtrace resolves the worker binary: an explicit -adtrace path, the
// directory this coordinator was launched from, or $PATH.
func findAdtrace(explicit string) (string, error) {
	if explicit != "" {
		if _, err := os.Stat(explicit); err != nil {
			return "", fmt.Errorf("-adtrace %s: %w", explicit, err)
		}
		return explicit, nil
	}
	if self, err := os.Executable(); err == nil {
		sibling := filepath.Join(filepath.Dir(self), "adtrace")
		if _, err := os.Stat(sibling); err == nil {
			return sibling, nil
		}
	}
	path, err := exec.LookPath("adtrace")
	if err != nil {
		return "", fmt.Errorf("adtrace binary not found (use -adtrace): %w", err)
	}
	return path, nil
}

// buildJobs materializes the partition plan. Time mode cuts one trace into
// flow-complete capture-time spans; a span that would come out empty (every
// packet in its rank range belongs to a flow opened earlier) shrinks the
// partition count instead, so every worker has real input and every partial
// a distinct trace fingerprint.
func buildJobs(mode string, traces []string, n int, workDir string) ([]job, error) {
	if mode == "files" {
		jobs := make([]job, len(traces))
		for i, t := range traces {
			jobs[i] = job{index: i, trace: t, out: filepath.Join(workDir, fmt.Sprintf("part-%03d.bin", i))}
		}
		return jobs, nil
	}
	total, err := partial.CountPackets(traces[0])
	if err != nil {
		return nil, err
	}
	k := n
	if total < int64(k) {
		k = int(total)
	}
	if k < 1 {
		k = 1
	}
	for ; k > 1; k-- {
		parts, err := partial.SplitTrace(traces[0], partial.EqualRankBounds(total, k), workDir, "part")
		if err != nil {
			return nil, err
		}
		if empty := emptyParts(parts); empty > 0 {
			log.Printf("split into %d spans left %d empty (long flows); retrying with %d", k, empty, k-1)
			continue
		}
		return partJobs(parts, workDir), nil
	}
	parts, err := partial.SplitTrace(traces[0], partial.EqualRankBounds(total, 1), workDir, "part")
	if err != nil {
		return nil, err
	}
	return partJobs(parts, workDir), nil
}

func emptyParts(parts []partial.Part) int {
	n := 0
	for _, p := range parts {
		if p.Packets == 0 {
			n++
		}
	}
	return n
}

func partJobs(parts []partial.Part, workDir string) []job {
	jobs := make([]job, len(parts))
	for i, p := range parts {
		jobs[i] = job{index: i, trace: p.Path, out: filepath.Join(workDir, fmt.Sprintf("part-%03d.bin", i))}
	}
	return jobs
}

// splitSetID derives the partition-set identifier from the partition
// contents, so retries (and reruns over the same split) stamp identical
// descriptors.
func splitSetID(jobs []job) string {
	h := fnv.New64a()
	for _, j := range jobs {
		io.WriteString(h, partial.FingerprintFile(j.trace))
		h.Write([]byte{'\n'})
	}
	return fmt.Sprintf("set-%016x-%d", h.Sum64(), len(jobs))
}

// runJobs supervises the worker pool: up to cfg.n concurrent adtrace
// subprocesses, each retried on failure up to cfg.retries times, with a
// per-worker attempt ledger reported at the end.
func runJobs(cfg config, adtrace, setID string, jobs []job) int {
	type ledger struct {
		attempts int
		err      error
	}
	results := make([]ledger, len(jobs))
	sem := make(chan struct{}, cfg.n)
	var wg sync.WaitGroup
	for i := range jobs {
		wg.Add(1)
		go func(j job) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			var err error
			for attempt := 0; attempt <= cfg.retries; attempt++ {
				results[j.index].attempts = attempt + 1
				kill := cfg.killIdx == j.index && attempt == 0
				err = runWorker(cfg, adtrace, setID, j, len(jobs), kill)
				if err == nil {
					results[j.index].err = nil
					return
				}
				log.Printf("worker %d attempt %d failed: %v", j.index, attempt+1, err)
				results[j.index].err = err
			}
		}(jobs[i])
	}
	wg.Wait()

	failed := 0
	for i, r := range results {
		status := "ok"
		if r.err != nil {
			failed++
			status = r.err.Error()
		}
		log.Printf("worker %d: %d attempt(s), %s", i, r.attempts, status)
	}
	if failed > 0 {
		log.Printf("%d of %d workers failed after %d retries", failed, len(jobs), cfg.retries)
		return 1
	}
	return 0
}

// runWorker execs one `adtrace -emit-partial` over one partition. When kill
// is set (the -test-kill-worker hook) the process is SIGKILLed shortly after
// launch to simulate a mid-run crash.
func runWorker(cfg config, adtrace, setID string, j job, count int, kill bool) error {
	args := []string{
		"-i", j.trace,
		"-emit-partial", j.out,
		"-partial-set", setID,
		"-partial-index", strconv.Itoa(j.index),
		"-partial-count", strconv.Itoa(count),
		"-workers", strconv.Itoa(cfg.workers),
		"-seed", strconv.FormatInt(cfg.seed, 10),
		"-sites", strconv.Itoa(cfg.sites),
		"-max-flows", strconv.Itoa(cfg.maxFlows),
		"-idle-timeout", cfg.idleTO.String(),
		"-max-pending", strconv.Itoa(cfg.maxPend),
		"-verdict-cache", strconv.Itoa(cfg.vcache),
	}
	if cfg.strict {
		args = append(args, "-strict")
	}
	cmd := exec.Command(adtrace, args...)
	cmd.Stdout = os.Stderr // emit mode prints nothing; route surprises off our report
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("starting %s: %w", adtrace, err)
	}
	if kill {
		go func(p *os.Process) {
			time.Sleep(150 * time.Millisecond)
			p.Kill()
		}(cmd.Process)
	}
	if err := cmd.Wait(); err != nil {
		return fmt.Errorf("adtrace on %s: %w", filepath.Base(j.trace), err)
	}
	if _, err := os.Stat(j.out); err != nil {
		return fmt.Errorf("adtrace on %s exited 0 but wrote no partial: %w", filepath.Base(j.trace), err)
	}
	return nil
}

// reduceAndReport loads, validates, and folds the partials, then renders the
// combined report through the shared report path — the same code a
// single-process run prints with.
func reduceAndReport(cfg config, paths []string) int {
	files, err := partial.LoadAll(paths)
	if err != nil {
		log.Print(err)
		return exitPartialRejected
	}
	m, err := partial.Reduce(files)
	if err != nil {
		log.Print(err)
		return exitPartialRejected
	}
	wopt := webgen.DefaultOptions()
	wopt.NumSites = m.Config.Sites
	wopt.Seed = m.Config.Seed
	world, err := webgen.NewWorld(wopt)
	if err != nil {
		log.Printf("building world (filter lists): %v", err)
		return 1
	}
	if got := partial.EngineHash(world.Bundle.ClassifierEngine()); got != m.Config.EngineHash {
		log.Printf("%v: this build compiles filter lists to %s, partials carry %s",
			partial.ErrFingerprint, got, m.Config.EngineHash)
		return exitPartialRejected
	}

	d := report.Data{
		Workers:      m.Workers,
		Stats:        m.Stats,
		Reader:       m.Reader,
		Table:        m.Table,
		Restarts:     m.Restarts,
		LostFlows:    m.LostFlows,
		Transactions: m.Transactions,
		TLSFlows:     m.TLSFlows,
	}
	for _, s := range m.Shards {
		d.Shards = append(d.Shards, report.Shard{
			Shard: s.Shard, Packets: s.Packets, Stats: s.Stats, Table: s.Table,
		})
	}
	log.Printf("reduced %d partials (%d transactions, %d tls flows)",
		len(m.Parts), len(m.Transactions), len(m.TLSFlows))

	if err := report.Print(os.Stdout, world, d, report.Options{
		Workers:      cfg.workers,
		Users:        cfg.users,
		Threshold:    cfg.threshold,
		WeblogPath:   cfg.weblogOut,
		VerdictCache: cfg.vcache,
	}); err != nil {
		log.Print(err)
		return 1
	}
	if cfg.failDegraded >= 0 {
		if frac := report.DegradedFraction(d); frac > cfg.failDegraded {
			log.Printf("degraded fraction %.4f exceeds -fail-degraded %.4f", frac, cfg.failDegraded)
			return 3
		}
	}
	return 0
}
