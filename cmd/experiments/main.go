// Command experiments reproduces the paper's evaluation: it regenerates
// every table and figure over synthetic traces and prints paper-vs-measured
// comparisons. With -md it also writes an EXPERIMENTS.md record.
//
// Usage:
//
//	experiments [-scale 0.01] [-sites 1000] [-run table1,figure7] [-md EXPERIMENTS.md]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"strings"
	"time"

	"adscape/internal/experiments"
	"adscape/internal/webgen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	var (
		scale  = flag.Float64("scale", 0.01, "RBN household scale (1.0 = paper size)")
		sites  = flag.Int("sites", 1000, "site catalog size")
		crawlN = flag.Int("crawl", 300, "sites crawled by the active measurement")
		runIDs = flag.String("run", "", "comma-separated experiment ids (default: all)")
		mdOut  = flag.String("md", "", "write an EXPERIMENTS.md-style record to this file")
		csvDir = flag.String("csv", "", "write per-experiment metric CSVs into this directory")
		thresh = flag.Int("threshold", 0, "active-user request threshold (0 = scale default)")
		seed   = flag.Int64("seed", 2015, "world seed")
	)
	flag.Parse()

	wopt := webgen.DefaultOptions()
	wopt.NumSites = *sites
	wopt.Seed = *seed
	world, err := webgen.NewWorld(wopt)
	if err != nil {
		log.Fatalf("building world: %v", err)
	}
	env := experiments.NewEnv(world, *scale)
	env.CrawlSites = *crawlN
	env.ActiveThreshold = *thresh

	ids := map[string]bool{}
	if *runIDs != "" {
		for _, id := range strings.Split(*runIDs, ",") {
			ids[strings.TrimSpace(id)] = true
		}
	}

	var md strings.Builder
	fmt.Fprintf(&md, "# EXPERIMENTS — paper vs measured\n\nGenerated %s, scale=%g, sites=%d, crawl=%d.\n",
		time.Now().Format(time.RFC3339), *scale, *sites, *crawlN)
	failures := 0
	for _, runner := range experiments.All() {
		if len(ids) > 0 && !ids[runner.ID] {
			continue
		}
		start := time.Now()
		rep, err := runner.Run(env)
		if err != nil {
			log.Printf("%s: FAILED: %v", runner.ID, err)
			failures++
			continue
		}
		fmt.Println(rep.String())
		fmt.Printf("(%s in %v)\n\n", runner.ID, time.Since(start).Round(time.Millisecond))
		writeMD(&md, rep)
		if *csvDir != "" {
			if err := writeCSV(*csvDir, rep); err != nil {
				log.Fatalf("writing csv for %s: %v", rep.ID, err)
			}
		}
	}
	if *mdOut != "" {
		md.WriteString(readingNotes)
		if err := os.WriteFile(*mdOut, []byte(md.String()), 0o644); err != nil {
			log.Fatalf("writing %s: %v", *mdOut, err)
		}
		log.Printf("wrote %s", *mdOut)
	}
	if failures > 0 {
		os.Exit(1)
	}
}

// writeCSV dumps one experiment's metrics as "name,paper,measured" rows for
// external plotting.
func writeCSV(dir string, rep *experiments.Report) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	var b strings.Builder
	b.WriteString("quantity,paper,measured\n")
	for _, m := range rep.Metrics {
		fmt.Fprintf(&b, "%q,%g,%g\n", m.Name, m.Paper, m.Measured)
	}
	return os.WriteFile(dir+"/"+rep.ID+".csv", []byte(b.String()), 0o644)
}

func writeMD(md *strings.Builder, rep *experiments.Report) {
	fmt.Fprintf(md, "\n## %s — %s\n\n", rep.ID, rep.Title)
	fmt.Fprintf(md, "```\n")
	for _, ln := range rep.Lines {
		fmt.Fprintln(md, ln)
	}
	fmt.Fprintf(md, "```\n")
	if len(rep.Metrics) == 0 {
		return
	}
	fmt.Fprintf(md, "\n| quantity | paper | measured | ratio |\n|---|---|---|---|\n")
	for _, m := range rep.Metrics {
		ratio := "-"
		if m.Paper != 0 && !math.IsNaN(m.Measured) {
			ratio = fmt.Sprintf("%.2f", m.Measured/m.Paper)
		}
		fmt.Fprintf(md, "| %s | %.3f%s | %.3f%s | %s |\n", m.Name, m.Paper, m.Unit, m.Measured, m.Unit, ratio)
	}
}

// readingNotes documents how to interpret the record and the known,
// scale-driven deviations from the paper.
const readingNotes = `
## Reading the record

All quantities above are ratios, distributions, rankings or crossovers, so
they are comparable across trace scales. The reproduction's *shape* claims
hold throughout:

- Ad-blockers cut HTTP and HTTPS request counts; the residual EL/EP hits
  under AdBP profiles are exactly the methodology's false positives
  (Table 1's '*' rows).
- The ad-ratio populations separate cleanly at the 5% threshold once users
  load ≥10 pages (Figure 2), and the inferred type-C share is stable under
  threshold perturbation (ablations).
- The indicator cross-product reproduces Table 3's ordering (A > B ≈ C > D)
  with type-C near the paper's 22%, and the simulator's ground truth shows
  the type-C call is high-precision.
- Ad traffic is ~18% of requests but ~1-2% of bytes, swings diurnally, is
  dominated by EasyList hits over EasyPrivacy over non-intrusive ads, and
  has the paper's characteristic object sizes (43-byte pixels, outsized ad
  videos, small non-ad text).
- Whitelisted traffic is a ~10-15% slice of ad requests of which roughly
  half would otherwise be blacklisted; adult/file-sharing publishers get
  none of it; the Google analog and the portal with its own ad platform
  benefit most.
- Google leads the AS ranking in requests and bytes with ~50% ads in its
  own traffic; Criteo/AppNexus traffic is almost entirely ads; ads show an
  RTB latency mode above 100 ms that regular traffic lacks, led by the
  DoubleClick analog.

Known, documented deviations (all scale or model artifacts, not
methodology failures):

- **Server-population shape (§8.1).** At 1/100-1/250 scale a server the
  paper saw 7 times is usually absent entirely, so the per-server
  mean/median ratio (~3-7× here vs 62× in the paper) and the ad-serving
  share of all servers (~0.4-0.65 vs 0.21) compress toward the center.
  Both move toward the paper as '-sites'/'-scale' grow.
- **Households with list downloads** runs above the paper's 19.7% because
  every simulated household is active during the window; the paper's
  denominator includes mostly-idle DSL lines.
- **(IP,UA) pairs per household** (~6 vs ~26) — the simulator models a
  handful of apps per household, not the full 2015 device zoo.
- **Whitelisted-request split between user classes** leans more toward
  type-C than the paper, a side effect of giving ad-block adopters the
  higher activity that keeps them represented among heavy hitters.
`
