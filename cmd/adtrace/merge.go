package main

import (
	"log"
	"os"

	"adscape/internal/obs"
	"adscape/internal/partial"
	"adscape/internal/report"
	"adscape/internal/webgen"
)

// exitPartialRejected is the documented exit code (7) for every class of
// partial-results rejection: corrupt files, foreign format versions,
// overlapping partitions, incompatible worker configurations, and
// incomplete (drained) partials. The log message names the offending file.
const exitPartialRejected = 7

type mergeConfig struct {
	seed     int64
	seedSet  bool
	sites    int
	sitesSet bool

	workers      int
	users        bool
	threshold    int
	weblogOut    string
	verdictCache int
	failDegraded float64
	obs          *obs.Registry
}

// runMerge is the reduce phase: load and validate the partial set, fold it
// with the merge algebra, and render the combined report through the same
// path a single-process run uses — so the output is byte-identical to
// analyzing the whole input in one process (DESIGN.md §13).
func runMerge(paths []string, cfg mergeConfig) int {
	files, err := partial.LoadAll(paths)
	if err != nil {
		log.Print(err)
		return exitPartialRejected
	}
	m, err := partial.Reduce(files)
	if err != nil {
		log.Print(err)
		return exitPartialRejected
	}

	// The partials pin the world (seed, site catalog): the merge
	// reclassifies against the filter lists they were produced with. An
	// explicit contradicting flag is a usage error, not something to
	// silently override.
	if cfg.seedSet && cfg.seed != m.Config.Seed {
		log.Printf("-seed %d contradicts the partials (produced with seed %d)", cfg.seed, m.Config.Seed)
		return 2
	}
	if cfg.sitesSet && cfg.sites != m.Config.Sites {
		log.Printf("-sites %d contradicts the partials (produced with sites %d)", cfg.sites, m.Config.Sites)
		return 2
	}
	wopt := webgen.DefaultOptions()
	wopt.NumSites = m.Config.Sites
	wopt.Seed = m.Config.Seed
	world, err := webgen.NewWorld(wopt)
	if err != nil {
		log.Printf("building world (filter lists): %v", err)
		return 1
	}
	// Cross-check this build's compiled lists against the fingerprint the
	// workers classified with: a drifted rule set would merge cleanly and
	// report subtly wrong ad counts.
	if got := partial.EngineHash(world.Bundle.ClassifierEngine()); got != m.Config.EngineHash {
		log.Printf("%v: this build compiles filter lists to %s, partials carry %s (%s)",
			partial.ErrFingerprint, got, m.Config.EngineHash, paths[0])
		return exitPartialRejected
	}

	d := report.Data{
		Workers:      m.Workers,
		Stats:        m.Stats,
		Reader:       m.Reader,
		Table:        m.Table,
		Restarts:     m.Restarts,
		LostFlows:    m.LostFlows,
		Transactions: m.Transactions,
		TLSFlows:     m.TLSFlows,
	}
	for _, s := range m.Shards {
		d.Shards = append(d.Shards, report.Shard{
			Shard: s.Shard, Packets: s.Packets, Stats: s.Stats, Table: s.Table,
		})
	}
	log.Printf("merged %d partials (%d transactions, %d tls flows)",
		len(m.Parts), len(m.Transactions), len(m.TLSFlows))

	if err := report.Print(os.Stdout, world, d, report.Options{
		Workers:      cfg.workers,
		Users:        cfg.users,
		Threshold:    cfg.threshold,
		WeblogPath:   cfg.weblogOut,
		VerdictCache: cfg.verdictCache,
		Obs:          cfg.obs,
	}); err != nil {
		log.Print(err)
		return 1
	}
	if cfg.failDegraded >= 0 {
		if frac := report.DegradedFraction(d); frac > cfg.failDegraded {
			log.Printf("degraded fraction %.4f exceeds -fail-degraded %.4f", frac, cfg.failDegraded)
			return 3
		}
	}
	return 0
}
