// Command adtrace applies the paper's passive classification methodology to
// a wire-format trace: it extracts HTTP transactions, reconstructs page
// metadata, classifies every request with the Adblock Plus engine, and
// prints traffic statistics plus per-user ad-blocker inference.
//
// Usage:
//
//	adtrace -i rbn2.trace [-users] [-threshold 300] [-weblog out.log]
//	        [-workers N] [-strict] [-max-flows N] [-idle-timeout 10m]
//	        [-max-pending N] [-checkpoint file [-checkpoint-interval N]]
//	        [-resume] [-deadline 4h] [-stall-timeout 1m]
//	        [-restart-budget N] [-fail-degraded F] [-verdict-cache N]
//	        [-cpuprofile file] [-memprofile file]
//	        [-debug-addr 127.0.0.1:6060] [-heartbeat 30s]
//
//	adtrace -serve -state-dir dir {-i live.trace | -listen unix:/run/adtrace.sock}
//	        [-window 1m] [-grace 5s] [-idle-horizon 1h] [-poll 200ms]
//	        [-lists-dir dir [-list-poll 2s]]
//	        [supervision and observability flags as above]
//
//	adtrace -dump-lists dir [-seed N] [-sites N]
//
//	adtrace -i part.trace -emit-partial part.bin
//	        [-partial-set ID -partial-index K -partial-count N]
//	        [analysis and supervision flags as above]
//
//	adtrace -merge part1.bin part2.bin ...
//	        [-users] [-threshold 300] [-weblog out.log] [-fail-degraded F]
//
// -emit-partial runs the normal sharded pipeline but serializes the
// pre-report state into a versioned, CRC-checked partial-results file
// instead of printing; -merge validates a set of partials (format version,
// worker-configuration fingerprint, disjoint partitions), reduces them with
// the merge algebra, and runs the unchanged report path — byte-identical to
// a single-process run over the whole input (DESIGN.md §13). -emit-partial
// composes with -checkpoint/-resume: a drained emit run keeps its checkpoint
// and writes no partial; resuming it to completion writes the identical
// partial file a one-shot run would have. cmd/adshard automates
// split/emit/merge across worker subprocesses.
//
// -lists-dir replaces the built-in filter-list bundle with the *.txt files in
// a directory, under lifecycle supervision (DESIGN.md §14): files are
// compiled in the background on change (polled every -list-poll; 0 polls
// never and reloads only on SIGHUP), validated against a parse-error budget,
// a rule floor, and a classification probe set, and the new rule set is
// swapped in atomically at a window boundary — a failed candidate is
// quarantined to <file>.rejected with a diagnostic while the previous rules
// keep serving. At startup validation is strict: a daemon refuses to boot on
// an invalid or empty list directory (exit 8). -dump-lists writes the
// built-in bundle in this directory layout as a starting point; a daemon
// started on an unmodified dump classifies byte-identically to the built-in
// engine.
//
// -serve turns the batch pipeline into a continuous service (DESIGN.md §12):
// the input is followed forever (tailing across file rotations and SIGHUP
// reopen requests, or accepting sequential trace streams on a -listen
// socket), and instead of one final report the daemon emits a
// checksummed JSON record per capture-time window to -state-dir/windows/ as
// the watermark closes each window. Per-user inference state ages out after
// -idle-horizon of capture-time inactivity, so memory stays bounded on
// run-forever inputs. The run checkpoints into -state-dir and resumes from
// it automatically on restart; re-emitted windows overwrite their files
// byte-identically, so downstream consumers never see duplicates. SIGINT or
// SIGTERM drains in-flight flows, flushes the final partial window (marked
// "final"), checkpoints, and exits 0.
//
// Classification memoizes engine verdicts in a bounded LRU (-verdict-cache
// entries, 0 disables); the hit ratio and classification throughput are
// reported on stderr so stdout stays byte-identical across repeat and
// resumed runs. -cpuprofile/-memprofile write pprof profiles of the whole
// run (see README "Profiling").
//
// -debug-addr serves a live observability endpoint while the run is in
// flight: /debug/metrics is a JSON snapshot of every stage's counters,
// gauges, and latency/queue-depth histograms (wire decode, reassembly,
// analyzer pairing, classification, supervision), /debug/pprof/ the standard
// profiles. The endpoint exposes internals — bind it to localhost. -heartbeat
// logs a one-line liveness summary at a fixed interval without any endpoint.
// Neither affects stdout, which stays byte-identical across worker counts.
//
// By default the trace is read leniently: corrupt records are skipped by
// resynchronizing on the next plausible record boundary, and the flow table
// is memory-bounded (idle eviction plus a live-flow cap). Everything skipped
// or evicted is reported in the degradation section of the summary. -strict
// restores fail-fast reading and unbounded state for trusted traces.
//
// Analysis runs on the supervised sharded engine (internal/runz over
// internal/pipeline): packets are fanned out by flow hash onto -workers
// analyzer shards (default GOMAXPROCS) and classification re-shards by user.
// On capture-time-ordered input results are byte-identical at any worker
// count; see DESIGN.md §8 for the determinism preconditions.
//
// Long runs are durable: -checkpoint periodically snapshots the full
// analysis state (atomically, every -checkpoint-interval packets), SIGINT or
// SIGTERM drains in-flight flows and writes a final checkpoint before
// exiting, and -resume continues from the checkpoint with byte-identical
// final output on the deterministic path (see DESIGN.md §9). -stall-timeout
// arms a watchdog that aborts a wedged run naming the stuck stage, -deadline
// is a hard wall-clock cap, and -restart-budget relaunches panicked shards
// with fresh state instead of losing the whole run.
//
// Exit codes:
//
//	0  completed — in -serve mode this includes graceful SIGINT/SIGTERM
//	   shutdown (drained, final window flushed, checkpointed)
//	1  fatal error (bad input, unreadable checkpoint, source failure,
//	   window emit failure)
//	2  usage error (including invalid flag values: non-positive -workers,
//	   negative durations, bad -serve configuration)
//	3  completed but degraded beyond the -fail-degraded threshold
//	4  interrupted by signal; state drained and checkpointed (batch mode)
//	5  aborted by the stall watchdog or the -deadline cap
//	6  simulated crash (-crash-after-checkpoints test hook)
//	7  partial-results rejection: a -merge input is corrupt, carries a
//	   foreign format version, overlaps another partial, was produced by an
//	   incompatible worker configuration or filter-list build, or is
//	   incomplete — the message names the offending file
//	8  invalid filter lists at startup: the -lists-dir is empty or a list
//	   failed strict startup validation (unparseable, over the parse-error
//	   budget, under the rule floor, or failing the probe set) — the message
//	   names the offending file. Runtime reloads never exit: a bad candidate
//	   is quarantined and the previous generation keeps serving
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"syscall"
	"time"

	"adscape/internal/abp"
	"adscape/internal/analyzer"
	"adscape/internal/core"
	"adscape/internal/filterlists"
	"adscape/internal/listmgr"
	"adscape/internal/obs"
	"adscape/internal/partial"
	"adscape/internal/pipeline"
	"adscape/internal/report"
	"adscape/internal/runz"
	"adscape/internal/webgen"
	"adscape/internal/wire"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("adtrace: ")
	var (
		in          = flag.String("i", "", "input trace file (required)")
		seed        = flag.Int64("seed", 2015, "world seed (must match the generator's)")
		sites       = flag.Int("sites", 1000, "world site catalog size (must match)")
		httpsShare  = flag.Float64("https-share", 0, "world encrypted-era knob (must match the generator's; does not change filter lists or server addressing)")
		users       = flag.Bool("users", false, "print per-user ad-blocker inference")
		threshold   = flag.Int("threshold", 300, "active-user request threshold")
		weblogOut   = flag.String("weblog", "", "optionally dump the HTTP transaction log")
		workers     = flag.Int("workers", runtime.GOMAXPROCS(0), "analysis worker shards; on time-ordered input results are identical at any value")
		strict      = flag.Bool("strict", false, "fail fast on corrupt records and disable memory bounds")
		maxFlows    = flag.Int("max-flows", wire.DefaultLimits().MaxFlows, "live-flow cap across all shards, oldest evicted first (0 = unlimited)")
		idleTimeout = flag.Duration("idle-timeout", wire.DefaultLimits().IdleTimeout, "evict flows idle this long on the packet clock (0 = never)")
		maxPending  = flag.Int("max-pending", analyzer.DefaultLimits().MaxPending, "per-connection unanswered-request cap (0 = unlimited)")
		internFlag  = flag.Bool("intern", true, "dedup repeated header strings at ingest (identical output, lower memory); -intern=false is the A/B memory baseline")

		ckptPath     = flag.String("checkpoint", "", "checkpoint file: periodically snapshot the full analysis state for -resume")
		ckptEvery    = flag.Int64("checkpoint-interval", 500000, "packets between periodic checkpoints")
		resume       = flag.Bool("resume", false, "continue from the -checkpoint file instead of starting over")
		deadline     = flag.Duration("deadline", 0, "hard wall-clock cap on the run; exceeded runs drain and exit 5 (0 = none)")
		stallTimeout = flag.Duration("stall-timeout", time.Minute, "abort when a stage makes no progress for this long, naming the wedged stage (0 = off)")
		restartBug   = flag.Int("restart-budget", 2, "restarts allowed per panicked shard before it stays dead")
		failDegraded = flag.Float64("fail-degraded", -1, "exit 3 when the degraded fraction (shed work / all work) exceeds this (-1 = off)")
		crashAfter   = flag.Int("crash-after-checkpoints", 0, "testing: stop dead after N periodic checkpoints, exit 6")

		emitPartial = flag.String("emit-partial", "", "run the pipeline but write the pre-report state to this partial-results file instead of printing (merge with -merge or adshard)")
		merge       = flag.Bool("merge", false, "merge the partial-results files given as arguments and print the combined report")
		partialSet  = flag.String("partial-set", "", "emit-partial: split-job identifier stamped into the partition descriptor (adshard sets this)")
		partialIdx  = flag.Int("partial-index", 0, "emit-partial: this partition's index within -partial-set")
		partialCnt  = flag.Int("partial-count", 0, "emit-partial: total partitions in -partial-set")

		serve       = flag.Bool("serve", false, "run as a continuous service: follow -i (or accept streams on -listen) forever, emitting per-window records to -state-dir")
		stateDir    = flag.String("state-dir", "", "serve: state directory for window records and the resumable checkpoint (required)")
		listsDir    = flag.String("lists-dir", "", "serve: load filter lists from the *.txt files in this directory instead of the built-in bundle, hot-reloading on change and SIGHUP")
		listPoll    = flag.Duration("list-poll", listmgr.DefaultPoll, "serve: how often to poll -lists-dir for changed files (0 = reload only on SIGHUP)")
		dumpLists   = flag.String("dump-lists", "", "write the built-in filter-list bundle as ABP text files into this directory and exit (a starting point for -lists-dir)")
		window      = flag.Duration("window", time.Minute, "serve: capture-time window width")
		grace       = flag.Duration("grace", 5*time.Second, "serve: out-of-order allowance; a window closes when the watermark (max packet time - grace) passes its end")
		idleHorizon = flag.Duration("idle-horizon", time.Hour, "serve: evict per-user inference state idle this long in capture time (0 = never, unbounded)")
		listen      = flag.String("listen", "", "serve: accept trace streams on this socket instead of following -i (network:address, e.g. unix:/run/adtrace.sock or tcp:127.0.0.1:9099; unauthenticated, bind locally)")
		pollEvery   = flag.Duration("poll", 200*time.Millisecond, "serve: idle polling interval for quiet live sources")

		verdictCache = flag.Int("verdict-cache", abp.DefaultVerdictCacheEntries, "engine verdict-cache entries (0 = disable memoization)")
		cpuProfile   = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProfile   = flag.String("memprofile", "", "write a heap profile (taken at exit) to this file")
		debugAddr    = flag.String("debug-addr", "", "serve live JSON metrics and pprof on this address (e.g. 127.0.0.1:6060); exposes internals, bind localhost only")
		heartbeat    = flag.Duration("heartbeat", 0, "log a one-line progress heartbeat at this interval (0 = off)")
	)
	flag.Parse()
	usageError := func(format string, args ...any) {
		log.Printf(format, args...)
		flag.Usage()
		os.Exit(2)
	}
	// Flag validation: nonsensical values are usage errors (exit 2) up
	// front, not runtime surprises hours into a run.
	if *workers <= 0 {
		usageError("-workers must be positive, got %d", *workers)
	}
	for _, d := range []struct {
		name string
		val  time.Duration
	}{
		{"-stall-timeout", *stallTimeout}, {"-heartbeat", *heartbeat},
		{"-deadline", *deadline}, {"-idle-timeout", *idleTimeout},
		{"-grace", *grace}, {"-idle-horizon", *idleHorizon},
	} {
		if d.val < 0 {
			usageError("%s must be non-negative, got %v", d.name, d.val)
		}
	}
	if *ckptEvery < 0 {
		usageError("-checkpoint-interval must be non-negative, got %d", *ckptEvery)
	}
	// seedSet/sitesSet: whether the user pinned the world explicitly. -merge
	// takes the world from the partials and refuses a contradicting flag.
	seedSet, sitesSet := false, false
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "seed":
			seedSet = true
		case "sites":
			sitesSet = true
		}
	})
	if *merge {
		if *serve || *in != "" || *listen != "" || *emitPartial != "" || *ckptPath != "" || *resume {
			usageError("-merge reads only partial files; it is incompatible with -i, -serve, -listen, -emit-partial, -checkpoint, and -resume")
		}
		if flag.NArg() == 0 {
			usageError("-merge requires at least one partial file argument")
		}
	} else if flag.NArg() > 0 {
		usageError("unexpected arguments: %v (partial files are only accepted with -merge)", flag.Args())
	}
	if *emitPartial != "" {
		if *serve {
			usageError("-emit-partial is incompatible with -serve (partials snapshot a completed batch run)")
		}
		if *users || *weblogOut != "" {
			usageError("-emit-partial defers reporting to the merge step; -users and -weblog belong on the -merge invocation")
		}
		if *partialSet != "" && (*partialIdx < 0 || *partialCnt <= *partialIdx) {
			usageError("-partial-set requires 0 <= -partial-index < -partial-count, got index %d count %d", *partialIdx, *partialCnt)
		}
		if *partialSet == "" && (*partialIdx != 0 || *partialCnt != 0) {
			usageError("-partial-index/-partial-count require -partial-set")
		}
	} else if *partialSet != "" || *partialIdx != 0 || *partialCnt != 0 {
		usageError("-partial-set/-partial-index/-partial-count require -emit-partial")
	}
	if *dumpLists != "" && (*serve || *merge || *emitPartial != "" || *in != "") {
		usageError("-dump-lists only writes the built-in bundle and exits; it is incompatible with -i, -serve, -merge, and -emit-partial")
	}
	if *listPoll < 0 {
		usageError("-list-poll must be non-negative, got %v", *listPoll)
	}
	if *serve {
		if *stateDir == "" {
			usageError("-serve requires -state-dir")
		}
		if (*in == "") == (*listen == "") {
			usageError("-serve requires exactly one input: -i (follow a file) or -listen (accept streams)")
		}
		if *window <= 0 {
			usageError("-window must be positive, got %v", *window)
		}
		if *pollEvery <= 0 {
			usageError("-poll must be positive, got %v", *pollEvery)
		}
	} else if !*merge && *dumpLists == "" {
		if *in == "" {
			flag.Usage()
			os.Exit(2)
		}
		if *listen != "" {
			usageError("-listen requires -serve")
		}
	}
	if *listsDir != "" && !*serve {
		usageError("-lists-dir requires -serve (batch runs classify with the built-in bundle)")
	}
	if *resume && *ckptPath == "" {
		log.Print("-resume requires -checkpoint")
		flag.Usage()
		os.Exit(2)
	}

	// Profiling covers the whole run (ingest + classification + inference).
	// main exits via os.Exit, so the profiles are flushed explicitly before
	// every completed-run exit path rather than by defer.
	stopProfiles := startProfiles(*cpuProfile, *memProfile)

	// The debug endpoint and its registry exist only when requested; a nil
	// registry threads through every stage as no-op handles, so the default
	// run pays nothing (the obs zero-cost contract, DESIGN.md §11). All obs
	// state stays off stdout — the endpoint serves diagnostics, the report
	// stays byte-identical across worker counts.
	var reg *obs.Registry
	if *debugAddr != "" {
		reg = obs.NewRegistry()
		srv, err := obs.Serve(*debugAddr, reg)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("debug endpoint on http://%s (/debug/metrics, /debug/pprof/)", srv.Addr())
	}

	if *merge {
		code := runMerge(flag.Args(), mergeConfig{
			seed: *seed, seedSet: seedSet,
			sites: *sites, sitesSet: sitesSet,
			workers:      *workers,
			users:        *users,
			threshold:    *threshold,
			weblogOut:    *weblogOut,
			verdictCache: *verdictCache,
			failDegraded: *failDegraded,
			obs:          reg,
		})
		stopProfiles()
		os.Exit(code)
	}

	if *httpsShare < 0 || *httpsShare > 1 {
		usageError("-https-share must be in [0,1], got %g", *httpsShare)
	}

	wopt := webgen.DefaultOptions()
	wopt.NumSites = *sites
	wopt.Seed = *seed
	wopt.HTTPSShare = *httpsShare
	world, err := webgen.NewWorld(wopt)
	if err != nil {
		log.Fatalf("building world (filter lists): %v", err)
	}

	if *dumpLists != "" {
		if err := filterlists.WriteListFiles(*dumpLists, world.Bundle); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote filter lists to %s (serve them with -serve -lists-dir %s)", *dumpLists, *dumpLists)
		stopProfiles()
		os.Exit(0)
	}

	lim := analyzer.Limits{}
	if !*strict {
		lim = analyzer.Limits{
			Table: wire.Limits{
				MaxFlows:            *maxFlows,
				IdleTimeout:         *idleTimeout,
				MaxBufferedSegments: wire.DefaultLimits().MaxBufferedSegments,
				MaxBufferedBytes:    wire.DefaultLimits().MaxBufferedBytes,
			},
			MaxPending: *maxPending,
		}
	}
	lim.DisableIntern = !*internFlag

	if *serve {
		// -list-poll 0 means "SIGHUP only" at the flag surface; listmgr
		// expresses disabled polling as a negative interval (its zero value
		// selects the default).
		lp := *listPoll
		if lp == 0 {
			lp = -1
		}
		code := runServe(world, serveConfig{
			in:              *in,
			listen:          *listen,
			stateDir:        *stateDir,
			window:          *window,
			grace:           *grace,
			idleHorizon:     *idleHorizon,
			poll:            *pollEvery,
			listsDir:        *listsDir,
			listPoll:        lp,
			workers:         *workers,
			strict:          *strict,
			limits:          lim,
			checkpointEvery: *ckptEvery,
			stallTimeout:    *stallTimeout,
			deadline:        *deadline,
			restartBudget:   *restartBug,
			heartbeat:       *heartbeat,
			obs:             reg,
		})
		stopProfiles()
		os.Exit(code)
	}

	f, err := os.Open(*in)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	r, err := wire.NewReaderOptions(f, wire.ReaderOptions{Lenient: !*strict})
	if err != nil {
		log.Fatal(err)
	}
	if reg != nil {
		r.SetObs(wire.NewMetrics(reg))
	}

	// First SIGINT/SIGTERM drains: shards flush, a final checkpoint is
	// written, partial results print with the interrupted marker. A second
	// signal exits immediately.
	stopCh := make(chan struct{})
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sig
		log.Printf("received %v: draining and checkpointing (signal again to exit immediately)", s)
		close(stopCh)
		<-sig
		log.Print("second signal: exiting without drain")
		os.Exit(1)
	}()

	ropt := runz.Options{
		Workers:               *workers,
		Limits:                lim,
		CheckpointPath:        *ckptPath,
		CheckpointEvery:       *ckptEvery,
		TraceID:               partial.FingerprintFile(*in),
		Stop:                  stopCh,
		StallTimeout:          *stallTimeout,
		Deadline:              *deadline,
		RestartBudget:         *restartBug,
		CrashAfterCheckpoints: *crashAfter,
		OnEvent:               func(msg string) { log.Print(msg) },
		Obs:                   reg,
		Heartbeat:             *heartbeat,
	}
	if *resume {
		ck, err := runz.LoadCheckpoint(*ckptPath)
		if err != nil {
			log.Fatalf("loading checkpoint: %v", err)
		}
		ropt.Resume = ck
	}
	res, err := runz.Run(r, ropt)
	if res == nil {
		log.Fatalf("analyzing: %v", err)
	}
	if res.Outcome == runz.OutcomeCrashed {
		log.Printf("simulated crash after %d checkpoints at packet %d", res.Checkpoints, res.PacketsRouted)
		stopProfiles()
		os.Exit(6)
	}
	if err != nil && !errors.Is(err, runz.ErrStalled) && !errors.Is(err, runz.ErrDeadlineExceeded) {
		log.Printf("analysis degraded: %v", err)
	}

	d := reportData(res, r.Stats())

	if *emitPartial != "" {
		// Map phase: serialize the pre-report state instead of printing. A
		// run that did not reach end of input keeps its checkpoint (when
		// configured) and writes no partial — merging it would under-count
		// its partition. Resume it to completion for the identical partial a
		// one-shot run would have produced.
		if res.Outcome != runz.OutcomeCompleted {
			log.Printf("run %s before end of input: no partial written", res.Outcome)
			if *ckptPath != "" && res.Checkpoints > 0 {
				log.Printf("resume with: adtrace -i %s -checkpoint %s -resume -emit-partial %s ...", *in, *ckptPath, *emitPartial)
			}
			stopProfiles()
			os.Exit(exitCode(res, d, *failDegraded))
		}
		engine := world.Bundle.ClassifierEngine()
		engine.SetVerdictCacheSize(*verdictCache)
		cfg := partial.Config{
			Seed:       *seed,
			Sites:      *sites,
			Workers:    *workers,
			Strict:     *strict,
			Limits:     lim,
			EngineHash: partial.EngineHash(engine),
		}
		part := partial.Partition{
			TraceID:   ropt.TraceID,
			TraceName: filepath.Base(*in),
			SetID:     *partialSet,
			Index:     *partialIdx,
			Count:     *partialCnt,
		}
		// Classification for the envelope runs single-threaded: the cache
		// hit/miss split depends on which worker sees a URL first, and the
		// file must be byte-stable across repeat and resumed runs.
		cls := pipeline.Classify(core.NewPipeline(engine), res.Transactions, 1)
		var snap *obs.Snapshot
		if reg != nil {
			snap = reg.Snapshot()
		}
		p, err := partial.Build(res, r.Stats(), cfg, part, cls, snap)
		if err != nil {
			log.Fatalf("building partial: %v", err)
		}
		if err := partial.Save(*emitPartial, p); err != nil {
			log.Fatalf("writing partial: %v", err)
		}
		log.Printf("wrote partial %s (%d transactions, %d tls flows, partition %q %d/%d)",
			*emitPartial, len(p.Transactions), len(p.TLSFlows), part.SetID, part.Index, part.Count)
		stopProfiles()
		os.Exit(exitCode(res, d, *failDegraded))
	}

	if res.Outcome != runz.OutcomeCompleted {
		fmt.Printf("RESULT: INTERRUPTED (%s)\n", res.Outcome)
		if res.Cause != "" {
			fmt.Printf("  cause: %s\n", res.Cause)
		}
		for _, s := range res.Stalled {
			fmt.Printf("  stalled: %s\n", s)
		}
		if *ckptPath != "" && res.Checkpoints > 0 {
			fmt.Printf("  resume with: adtrace -i %s -checkpoint %s -resume ...\n", *in, *ckptPath)
		}
	}

	if err := report.Print(os.Stdout, world, d, report.Options{
		Workers:      *workers,
		Users:        *users,
		Threshold:    *threshold,
		WeblogPath:   *weblogOut,
		VerdictCache: *verdictCache,
		Obs:          reg,
	}); err != nil {
		log.Fatal(err)
	}

	stopProfiles()
	os.Exit(exitCode(res, d, *failDegraded))
}

// reportData shapes a supervised run's output for the shared report path.
func reportData(res *runz.Result, rs wire.ReaderStats) report.Data {
	d := report.Data{
		Workers:      res.Workers,
		Stats:        res.Stats,
		Reader:       rs,
		Table:        res.Table,
		Restarts:     res.Restarts,
		LostFlows:    res.LostFlows,
		Transactions: res.Transactions,
		TLSFlows:     res.TLSFlows,
	}
	for _, s := range res.Shards {
		d.Shards = append(d.Shards, report.Shard{
			Shard: s.Shard, Packets: s.Packets, Stats: s.Stats, Table: s.Table,
		})
	}
	return d
}

// startProfiles arms -cpuprofile/-memprofile and returns the flush function
// to call before exiting. Fatal on unwritable paths, like other flag errors.
func startProfiles(cpuPath, memPath string) func() {
	var cpuF *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			log.Fatalf("creating -cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("starting CPU profile: %v", err)
		}
		cpuF = f
	}
	return func() {
		if cpuF != nil {
			pprof.StopCPUProfile()
			cpuF.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				log.Printf("creating -memprofile: %v", err)
				return
			}
			runtime.GC() // materialize the final live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Printf("writing heap profile: %v", err)
			}
			f.Close()
		}
	}
}

// exitCode maps the run outcome onto the documented exit-code contract.
func exitCode(res *runz.Result, d report.Data, failDegraded float64) int {
	switch res.Outcome {
	case runz.OutcomeStopped:
		return 4
	case runz.OutcomeStalled, runz.OutcomeDeadline:
		return 5
	case runz.OutcomeReadError:
		return 1
	}
	if failDegraded >= 0 {
		if frac := report.DegradedFraction(d); frac > failDegraded {
			log.Printf("degraded fraction %.4f exceeds -fail-degraded %.4f", frac, failDegraded)
			return 3
		}
	}
	return 0
}
