// Command adtrace applies the paper's passive classification methodology to
// a wire-format trace: it extracts HTTP transactions, reconstructs page
// metadata, classifies every request with the Adblock Plus engine, and
// prints traffic statistics plus per-user ad-blocker inference.
//
// Usage:
//
//	adtrace -i rbn2.trace [-users] [-threshold 300] [-weblog out.log]
//	        [-strict] [-max-flows N] [-idle-timeout 10m] [-max-pending N]
//
// By default the trace is read leniently: corrupt records are skipped by
// resynchronizing on the next plausible record boundary, and the flow table
// is memory-bounded (idle eviction plus a live-flow cap). Everything skipped
// or evicted is reported in the degradation section of the summary. -strict
// restores fail-fast reading and unbounded state for trusted traces.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"adscape/internal/analyzer"
	"adscape/internal/core"
	"adscape/internal/dnssim"
	"adscape/internal/inference"
	"adscape/internal/webgen"
	"adscape/internal/weblog"
	"adscape/internal/wire"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("adtrace: ")
	var (
		in          = flag.String("i", "", "input trace file (required)")
		seed        = flag.Int64("seed", 2015, "world seed (must match the generator's)")
		sites       = flag.Int("sites", 1000, "world site catalog size (must match)")
		users       = flag.Bool("users", false, "print per-user ad-blocker inference")
		threshold   = flag.Int("threshold", 300, "active-user request threshold")
		weblogOut   = flag.String("weblog", "", "optionally dump the HTTP transaction log")
		strict      = flag.Bool("strict", false, "fail fast on corrupt records and disable memory bounds")
		maxFlows    = flag.Int("max-flows", wire.DefaultLimits().MaxFlows, "live-flow cap, oldest evicted first (0 = unlimited)")
		idleTimeout = flag.Duration("idle-timeout", wire.DefaultLimits().IdleTimeout, "evict flows idle this long on the packet clock (0 = never)")
		maxPending  = flag.Int("max-pending", analyzer.DefaultLimits().MaxPending, "per-connection unanswered-request cap (0 = unlimited)")
	)
	flag.Parse()
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}

	wopt := webgen.DefaultOptions()
	wopt.NumSites = *sites
	wopt.Seed = *seed
	world, err := webgen.NewWorld(wopt)
	if err != nil {
		log.Fatalf("building world (filter lists): %v", err)
	}

	f, err := os.Open(*in)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	r, err := wire.NewReaderOptions(f, wire.ReaderOptions{Lenient: !*strict})
	if err != nil {
		log.Fatal(err)
	}
	lim := analyzer.Limits{}
	if !*strict {
		lim = analyzer.Limits{
			Table: wire.Limits{
				MaxFlows:            *maxFlows,
				IdleTimeout:         *idleTimeout,
				MaxBufferedSegments: wire.DefaultLimits().MaxBufferedSegments,
				MaxBufferedBytes:    wire.DefaultLimits().MaxBufferedBytes,
			},
			MaxPending: *maxPending,
		}
	}
	col := &analyzer.Collector{}
	a := analyzer.NewWithLimits(col, lim)
	if err := r.ForEach(func(p *wire.Packet) error { a.Add(p); return nil }); err != nil {
		log.Fatalf("analyzing: %v", err)
	}
	a.Finish()
	stats := a.Stats()
	fmt.Printf("packets:            %d\n", stats.Packets)
	fmt.Printf("http transactions:  %d\n", stats.HTTPTransactions)
	fmt.Printf("https flows:        %d\n", stats.TLSFlows)
	fmt.Printf("http wire bytes:    %d\n", stats.HTTPWireBytes)
	printDegradation(r.Stats(), stats, a.TableStats())

	pipeline := core.NewPipeline(world.Bundle.ClassifierEngine())
	results := pipeline.ClassifyAll(col.Transactions)
	agg := core.Aggregate(results)
	fmt.Printf("ad requests:        %d (%.2f%%)\n", agg.AdRequests, agg.AdRatio()*100)
	fmt.Printf("ad bytes:           %d (%.2f%%)\n", agg.AdBytes, 100*float64(agg.AdBytes)/float64(max64(agg.Bytes, 1)))
	for _, name := range agg.ListNames() {
		fmt.Printf("  list %-14s %d hits\n", name, agg.PerList[name])
	}
	fmt.Printf("whitelisted (non-intrusive): %d, of which blacklisted: %d\n",
		agg.Whitelisted, agg.WhitelistedAndBlacklisted)

	if *weblogOut != "" {
		if err := dumpWeblog(*weblogOut, results); err != nil {
			log.Fatalf("writing weblog: %v", err)
		}
	}
	if *users {
		printUsers(world, col, results, *threshold)
	}
}

// printDegradation reports every piece of work the bounded ingest path shed:
// nothing is silently dropped, so downstream aggregates can be qualified
// against these counters (Table-2-style numbers degrade proportionally).
func printDegradation(rs wire.ReaderStats, as analyzer.Stats, ts wire.TableStats) {
	fmt.Printf("degradation:\n")
	fmt.Printf("  reader resyncs:    %d (%d bytes skipped, truncated tail: %v)\n",
		rs.Resyncs, rs.SkippedBytes, rs.TruncatedTail)
	fmt.Printf("  evicted flows:     %d idle, %d over cap\n", ts.EvictedIdle, ts.EvictedCap)
	fmt.Printf("  reassembly:        %d gaps, %d trimmed retransmissions\n", ts.Gaps, ts.TrimmedSegments)
	fmt.Printf("  parse errors:      %d\n", as.ParseErrors)
	fmt.Printf("  pending evicted:   %d\n", as.PendingEvicted)
}

func dumpWeblog(path string, results []*core.Result) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w, err := weblog.NewWriter(f)
	if err != nil {
		return err
	}
	for _, r := range results {
		// The privacy step (§5): truncate URLs to FQDNs after
		// classification completes.
		tx := *r.Ann.Tx
		tx.Truncate()
		if err := w.Write(&tx); err != nil {
			return err
		}
	}
	return w.Flush()
}

func printUsers(world *webgen.World, col *analyzer.Collector, results []*core.Result, threshold int) {
	usersMap := inference.Aggregate(results)
	// Discover the Adblock Plus servers the way §3.2 does: union the
	// answers of multiple DNS resolver vantage points.
	abpIPs := dnssim.DiscoverAll(world.DNSZone(), webgen.ABPListHost, 3, 4)
	inference.MarkListDownloads(usersMap, col.Flows, abpIPs)
	opt := inference.Options{RatioThreshold: 0.05, ActiveThreshold: threshold}
	active := inference.ActiveBrowsers(usersMap, opt)
	rows := inference.Table3(active, opt)
	fmt.Printf("\nactive browsers (≥%d requests): %d\n", threshold, len(active))
	for _, row := range rows {
		fmt.Printf("  class %s: %5.1f%% (%d instances)\n", row.Class, row.InstanceShare*100, row.Instances)
	}
	fmt.Printf("likely Adblock Plus users: %.1f%%\n", inference.ABPShare(active, opt)*100)
	with, total := inference.HouseholdsWithDownload(usersMap)
	fmt.Printf("households with ABP list downloads: %d/%d (%.1f%%)\n",
		with, total, 100*float64(with)/float64(max(total, 1)))
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
