// Command adtrace applies the paper's passive classification methodology to
// a wire-format trace: it extracts HTTP transactions, reconstructs page
// metadata, classifies every request with the Adblock Plus engine, and
// prints traffic statistics plus per-user ad-blocker inference.
//
// Usage:
//
//	adtrace -i rbn2.trace [-users] [-threshold 300] [-weblog out.log]
//	        [-workers N] [-strict] [-max-flows N] [-idle-timeout 10m]
//	        [-max-pending N]
//
// By default the trace is read leniently: corrupt records are skipped by
// resynchronizing on the next plausible record boundary, and the flow table
// is memory-bounded (idle eviction plus a live-flow cap). Everything skipped
// or evicted is reported in the degradation section of the summary. -strict
// restores fail-fast reading and unbounded state for trusted traces.
//
// Analysis runs on the sharded multi-core pipeline (internal/pipeline):
// packets are fanned out by flow hash onto -workers analyzer shards (default
// GOMAXPROCS) and classification re-shards by user. On capture-time-ordered
// input (tracesort output, live capture) results are byte-identical at any
// worker count; see DESIGN.md §8 for the determinism preconditions.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"

	"adscape/internal/analyzer"
	"adscape/internal/core"
	"adscape/internal/dnssim"
	"adscape/internal/inference"
	"adscape/internal/pipeline"
	"adscape/internal/webgen"
	"adscape/internal/weblog"
	"adscape/internal/wire"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("adtrace: ")
	var (
		in          = flag.String("i", "", "input trace file (required)")
		seed        = flag.Int64("seed", 2015, "world seed (must match the generator's)")
		sites       = flag.Int("sites", 1000, "world site catalog size (must match)")
		users       = flag.Bool("users", false, "print per-user ad-blocker inference")
		threshold   = flag.Int("threshold", 300, "active-user request threshold")
		weblogOut   = flag.String("weblog", "", "optionally dump the HTTP transaction log")
		workers     = flag.Int("workers", runtime.GOMAXPROCS(0), "analysis worker shards; on time-ordered input results are identical at any value")
		strict      = flag.Bool("strict", false, "fail fast on corrupt records and disable memory bounds")
		maxFlows    = flag.Int("max-flows", wire.DefaultLimits().MaxFlows, "live-flow cap across all shards, oldest evicted first (0 = unlimited)")
		idleTimeout = flag.Duration("idle-timeout", wire.DefaultLimits().IdleTimeout, "evict flows idle this long on the packet clock (0 = never)")
		maxPending  = flag.Int("max-pending", analyzer.DefaultLimits().MaxPending, "per-connection unanswered-request cap (0 = unlimited)")
	)
	flag.Parse()
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}

	wopt := webgen.DefaultOptions()
	wopt.NumSites = *sites
	wopt.Seed = *seed
	world, err := webgen.NewWorld(wopt)
	if err != nil {
		log.Fatalf("building world (filter lists): %v", err)
	}

	f, err := os.Open(*in)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	r, err := wire.NewReaderOptions(f, wire.ReaderOptions{Lenient: !*strict})
	if err != nil {
		log.Fatal(err)
	}
	lim := analyzer.Limits{}
	if !*strict {
		lim = analyzer.Limits{
			Table: wire.Limits{
				MaxFlows:            *maxFlows,
				IdleTimeout:         *idleTimeout,
				MaxBufferedSegments: wire.DefaultLimits().MaxBufferedSegments,
				MaxBufferedBytes:    wire.DefaultLimits().MaxBufferedBytes,
			},
			MaxPending: *maxPending,
		}
	}
	res, err := pipeline.Analyze(r, pipeline.Options{Workers: *workers, Limits: lim})
	if err != nil {
		log.Fatalf("analyzing: %v", err)
	}
	stats := res.Stats
	fmt.Printf("packets:            %d\n", stats.Packets)
	fmt.Printf("http transactions:  %d\n", stats.HTTPTransactions)
	fmt.Printf("https flows:        %d\n", stats.TLSFlows)
	fmt.Printf("http wire bytes:    %d\n", stats.HTTPWireBytes)
	printDegradation(r.Stats(), res)

	cls := pipeline.Classify(core.NewPipeline(world.Bundle.ClassifierEngine()), res.Transactions, *workers)
	agg := cls.Stats
	fmt.Printf("ad requests:        %d (%.2f%%)\n", agg.AdRequests, agg.AdRatio()*100)
	fmt.Printf("ad bytes:           %d (%.2f%%)\n", agg.AdBytes, 100*float64(agg.AdBytes)/float64(max64(agg.Bytes, 1)))
	for _, name := range agg.ListNames() {
		fmt.Printf("  list %-14s %d hits\n", name, agg.PerList[name])
	}
	fmt.Printf("whitelisted (non-intrusive): %d, of which blacklisted: %d\n",
		agg.Whitelisted, agg.WhitelistedAndBlacklisted)

	if *weblogOut != "" {
		if err := dumpWeblog(*weblogOut, cls.Results); err != nil {
			log.Fatalf("writing weblog: %v", err)
		}
	}
	if *users {
		printUsers(world, res, cls, *threshold)
	}
}

// printDegradation reports every piece of work the bounded ingest path shed:
// nothing is silently dropped, so downstream aggregates can be qualified
// against these counters (Table-2-style numbers degrade proportionally).
// The merged counters are the per-shard sums; the per-shard breakdown shows
// where the pressure landed (a single hot shard means a skewed flow hash or
// an elephant household, not a trace-wide problem).
func printDegradation(rs wire.ReaderStats, res *pipeline.Result) {
	fmt.Printf("degradation (merged over %d shards):\n", res.Workers)
	fmt.Printf("  reader resyncs:    %d (%d bytes skipped, truncated tail: %v)\n",
		rs.Resyncs, rs.SkippedBytes, rs.TruncatedTail)
	fmt.Printf("  evicted flows:     %d idle, %d over cap\n", res.Table.EvictedIdle, res.Table.EvictedCap)
	fmt.Printf("  reassembly:        %d gaps, %d trimmed retransmissions\n", res.Table.Gaps, res.Table.TrimmedSegments)
	fmt.Printf("  parse errors:      %d\n", res.Stats.ParseErrors)
	fmt.Printf("  pending evicted:   %d\n", res.Stats.PendingEvicted)
	if res.Workers > 1 {
		for _, s := range res.Shards {
			fmt.Printf("  shard %2d: packets=%d txs=%d evicted=%d/%d gaps=%d parse-errors=%d pending-evicted=%d\n",
				s.Shard, s.Packets, s.Stats.HTTPTransactions,
				s.Table.EvictedIdle, s.Table.EvictedCap, s.Table.Gaps,
				s.Stats.ParseErrors, s.Stats.PendingEvicted)
		}
	}
}

func dumpWeblog(path string, results []*core.Result) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w, err := weblog.NewWriter(f)
	if err != nil {
		return err
	}
	for _, r := range results {
		// The privacy step (§5): truncate URLs to FQDNs after
		// classification completes.
		tx := *r.Ann.Tx
		tx.Truncate()
		if err := w.Write(&tx); err != nil {
			return err
		}
	}
	return w.Flush()
}

func printUsers(world *webgen.World, res *pipeline.Result, cls *pipeline.ClassifyResult, threshold int) {
	usersMap := cls.Users
	// Discover the Adblock Plus servers the way §3.2 does: union the
	// answers of multiple DNS resolver vantage points.
	abpIPs := dnssim.DiscoverAll(world.DNSZone(), webgen.ABPListHost, 3, 4)
	inference.MarkListDownloads(usersMap, res.TLSFlows, abpIPs)
	opt := inference.Options{RatioThreshold: 0.05, ActiveThreshold: threshold}
	active := inference.ActiveBrowsers(usersMap, opt)
	rows := inference.Table3(active, opt)
	fmt.Printf("\nactive browsers (≥%d requests): %d\n", threshold, len(active))
	for _, row := range rows {
		fmt.Printf("  class %s: %5.1f%% (%d instances)\n", row.Class, row.InstanceShare*100, row.Instances)
	}
	fmt.Printf("likely Adblock Plus users: %.1f%%\n", inference.ABPShare(active, opt)*100)
	with, total := inference.HouseholdsWithDownload(usersMap)
	fmt.Printf("households with ABP list downloads: %d/%d (%.1f%%)\n",
		with, total, 100*float64(with)/float64(max(total, 1)))
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
