package main

import (
	"errors"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"adscape/internal/abp"
	"adscape/internal/analyzer"
	"adscape/internal/daemon"
	"adscape/internal/dnssim"
	"adscape/internal/listmgr"
	"adscape/internal/obs"
	"adscape/internal/runz"
	"adscape/internal/webgen"
	"adscape/internal/wire"
)

// serveConfig carries the flag values serve mode consumes.
type serveConfig struct {
	in          string // followed trace file ("" with listen set)
	listen      string // "network:address" socket listener ("" with in set)
	stateDir    string
	window      time.Duration
	grace       time.Duration
	idleHorizon time.Duration
	poll        time.Duration
	listsDir    string        // filter-list directory ("" = built-in bundle)
	listPoll    time.Duration // list-change polling (listmgr.Config.Poll semantics)

	workers         int
	strict          bool
	limits          analyzer.Limits
	checkpointEvery int64
	stallTimeout    time.Duration
	deadline        time.Duration
	restartBudget   int
	heartbeat       time.Duration
	obs             *obs.Registry
}

// reopener is the SIGHUP capability: only file-backed sources have one.
type reopener interface{ Reopen() }

// runServe is the continuous-service entry point: it builds the live source,
// wires signals (first SIGINT/SIGTERM drains and exits through the completed
// path, a second exits immediately, SIGHUP reopens a followed file), and runs
// the daemon until stopped. Returns the process exit code.
//
// Window records are the output; the summary printed at exit reports run
// totals only, so serve mode keeps no unbounded state anywhere.
func runServe(world *webgen.World, cfg serveConfig) int {
	// Stop is routed to the SOURCE, not the supervisor: a stopped live
	// source returns clean EOF, so a graceful shutdown drains in-flight
	// flows, flushes the final partial window, checkpoints, and exits 0 as
	// a *completed* run (DESIGN.md §12).
	stopCh := make(chan struct{})
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)

	var src wire.PacketSource
	var stats func() wire.ReaderStats
	var reopen func() // SIGHUP capability: only file-backed sources have one
	if cfg.listen != "" {
		network, addr, ok := strings.Cut(cfg.listen, ":")
		if !ok || addr == "" {
			log.Printf("-listen %q: want network:address (e.g. unix:/run/adtrace.sock, tcp:127.0.0.1:9099)", cfg.listen)
			return 2
		}
		s, err := daemon.NewSocketSource(network, addr, daemon.SocketOptions{
			Lenient: !cfg.strict, Poll: cfg.poll, Stop: stopCh, Obs: cfg.obs,
		})
		if err != nil {
			log.Printf("listening on %s: %v", cfg.listen, err)
			return 1
		}
		defer s.Close()
		log.Printf("serving: accepting trace streams on %s (state in %s)", s.Addr(), cfg.stateDir)
		src, stats = s, s.Stats
	} else {
		s, err := daemon.NewFollowSource(cfg.in, daemon.FollowOptions{
			Lenient: !cfg.strict, Poll: cfg.poll, Stop: stopCh, Obs: cfg.obs,
		})
		if err != nil {
			log.Printf("following %s: %v", cfg.in, err)
			return 1
		}
		defer s.Close()
		log.Printf("serving: following %s (state in %s)", cfg.in, cfg.stateDir)
		src, stats = s, s.Stats
		reopen = s.Reopen
	}

	// Filter lists: -lists-dir puts the rule set under listmgr supervision
	// (hot reload on change and SIGHUP, quarantine of bad lists); otherwise
	// the built-in bundle serves a single fixed generation. Startup is
	// strict — a daemon must not boot serving rules it could not read — so
	// an invalid or empty directory is exit 8, naming the offending file.
	var mgr *listmgr.Manager
	var engine *abp.Engine
	if cfg.listsDir != "" {
		m, err := listmgr.Open(listmgr.Config{
			Dir:     cfg.listsDir,
			Poll:    cfg.listPoll,
			OnEvent: func(msg string) { log.Print(msg) },
			Obs:     cfg.obs,
		})
		if err != nil {
			log.Printf("filter lists: %v", err)
			if errors.Is(err, listmgr.ErrInvalid) || errors.Is(err, listmgr.ErrNoLists) {
				return 8
			}
			return 1
		}
		mgr = m
		mgr.Start()
		defer mgr.Stop()
		log.Printf("filter lists: %s under supervision (poll %v)", cfg.listsDir, cfg.listPoll)
	} else {
		engine = world.Bundle.ClassifierEngine()
	}

	// SIGHUP means "re-read your inputs": reopen a followed file (rotation)
	// and rescan the list directory, whichever apply.
	go func() {
		for range hup {
			if reopen != nil {
				log.Print("SIGHUP: reopening followed file")
				reopen()
			}
			if mgr != nil {
				log.Print("SIGHUP: re-reading filter lists")
				mgr.Reload()
			}
		}
	}()

	go func() {
		s := <-sig
		log.Printf("received %v: draining, flushing final window, checkpointing (signal again to exit immediately)", s)
		close(stopCh)
		<-sig
		log.Print("second signal: exiting without drain")
		os.Exit(1)
	}()

	// §3.2 discovery: the filter-list server addresses windows test TLS
	// flows against, resolved once up front from the world's DNS zone.
	abpIPs := dnssim.DiscoverAll(world.DNSZone(), webgen.ABPListHost, 3, 4)

	var handle *abp.EngineHandle
	if mgr != nil {
		handle = mgr.Handle()
	}
	res, err := daemon.Run(src, daemon.Config{
		Dir:             cfg.stateDir,
		Window:          cfg.window,
		Grace:           cfg.grace,
		IdleHorizon:     cfg.idleHorizon,
		Engine:          engine,
		Engines:         handle,
		ABPServerIPs:    abpIPs,
		Workers:         cfg.workers,
		Limits:          cfg.limits,
		CheckpointEvery: cfg.checkpointEvery,
		Stop:            nil, // stop is the source's job; see above
		StallTimeout:    cfg.stallTimeout,
		Deadline:        cfg.deadline,
		RestartBudget:   cfg.restartBudget,
		OnEvent:         func(msg string) { log.Print(msg) },
		Obs:             cfg.obs,
		Heartbeat:       cfg.heartbeat,
	})
	if err != nil && res == nil {
		log.Printf("serve: %v", err)
		return 1
	}
	if err != nil {
		log.Printf("serve degraded: %v", err)
	}
	printServeSummary(res, stats())
	if mgr != nil {
		fmt.Printf("filter lists:       generation %d live at exit\n", mgr.Handle().Generation())
	}
	return serveExitCode(res.Run)
}

func printServeSummary(res *daemon.Result, rs wire.ReaderStats) {
	r := res.Run
	fmt.Printf("RESULT: %s\n", r.Outcome)
	if r.Cause != "" {
		fmt.Printf("  cause: %s\n", r.Cause)
	}
	for _, s := range r.Stalled {
		fmt.Printf("  stalled: %s\n", s)
	}
	fmt.Printf("packets routed:     %d (resumed past %d)\n", r.PacketsRouted, r.ResumedPackets)
	fmt.Printf("windows emitted:    %d (%d late records)\n", r.WindowsEmitted, r.LateWindowRecords)
	fmt.Printf("checkpoints:        %d\n", r.Checkpoints)
	fmt.Printf("reader degradation: %d resyncs, %d bytes skipped, %d follow retries\n",
		rs.Resyncs, rs.SkippedBytes, rs.FollowRetries)
	fmt.Printf("inference state:    %d users live (%d evicted), %d households live (%d evicted)\n",
		res.LiveUsers, res.EvictedUsers, res.LiveHouseholds, res.EvictedHouseholds)
}

// serveExitCode maps a daemon run onto the exit-code contract. A graceful
// signal shutdown surfaces as OutcomeCompleted (the stopped source returns
// EOF), so serve mode exits 0 where batch mode would exit 4.
func serveExitCode(r *runz.Result) int {
	switch r.Outcome {
	case runz.OutcomeCompleted:
		return 0
	case runz.OutcomeStopped:
		return 4
	case runz.OutcomeStalled, runz.OutcomeDeadline:
		return 5
	default: // read error, emit error, unexpected
		return 1
	}
}
