// Command crawlsim runs the paper's active-measurement study (§4): an
// instrumented browser loads the top-N catalog sites once per blocker
// profile, capturing each profile's traffic into its own trace file.
//
// Usage:
//
//	crawlsim -sites 1000 -outdir crawl/
package main

import (
	"flag"
	"log"
	"os"
	"path/filepath"
	"strings"

	"adscape/internal/browser"
	"adscape/internal/webgen"
	"adscape/internal/wire"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("crawlsim: ")
	var (
		nSites = flag.Int("sites", 1000, "number of catalog sites to crawl")
		outdir = flag.String("outdir", "crawl", "output directory for per-profile traces")
		seed   = flag.Int64("seed", 2015, "world generation seed")
	)
	flag.Parse()

	wopt := webgen.DefaultOptions()
	if *nSites > wopt.NumSites {
		wopt.NumSites = *nSites
	}
	wopt.Seed = *seed
	world, err := webgen.NewWorld(wopt)
	if err != nil {
		log.Fatalf("building world: %v", err)
	}
	if err := os.MkdirAll(*outdir, 0o755); err != nil {
		log.Fatal(err)
	}

	for _, prof := range browser.Profiles {
		name := strings.ToLower(strings.ReplaceAll(prof.String(), "-", "_"))
		path := filepath.Join(*outdir, name+".trace")
		if err := crawlProfile(world, prof, *nSites, path); err != nil {
			log.Fatalf("profile %s: %v", prof, err)
		}
	}
}

func crawlProfile(world *webgen.World, prof browser.Profile, nSites int, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w, err := wire.NewWriter(f)
	if err != nil {
		return err
	}
	loaded := 0
	for i := 0; i < nSites && i < len(world.Sites); i++ {
		// A fresh browser per site: empty cache, new connections (§4.1).
		br := browser.New(browser.Config{
			World: world, Profile: prof,
			UserAgent: "CrawlBot/1.0 (Chromium like)",
			ClientIP:  0x7F000001,
			Emit:      w.Write,
			Seed:      int64(i)*131 + int64(prof),
		})
		if _, err := br.LoadPage(int64(i+1)*1e9, world.Sites[i], 0); err != nil {
			return err
		}
		loaded++
	}
	if err := w.Flush(); err != nil {
		return err
	}
	log.Printf("%-12s %4d sites, %7d packets -> %s", prof, loaded, w.Count(), path)
	return nil
}
