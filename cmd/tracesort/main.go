// Command tracesort rewrites a wire-format trace in capture-timestamp order
// using bounded memory (external merge sort). The simulator emits per-device
// packet streams; sorting restores the global time order a capture card
// would have produced.
//
// Usage:
//
//	tracesort -i rbn2.trace -o rbn2.sorted.trace [-mem 500000]
package main

import (
	"flag"
	"log"
	"os"

	"adscape/internal/wire"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracesort: ")
	var (
		in  = flag.String("i", "", "input trace (required)")
		out = flag.String("o", "", "output trace (required)")
		mem = flag.Int("mem", 0, "max packets buffered in memory (0 = default)")
		tmp = flag.String("tmp", "", "spill directory (default: OS temp)")
	)
	flag.Parse()
	if *in == "" || *out == "" {
		flag.Usage()
		os.Exit(2)
	}
	fin, err := os.Open(*in)
	if err != nil {
		log.Fatal(err)
	}
	defer fin.Close()
	r, err := wire.NewReader(fin)
	if err != nil {
		log.Fatal(err)
	}
	fout, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer fout.Close()
	w, err := wire.NewWriter(fout)
	if err != nil {
		log.Fatal(err)
	}
	if err := wire.SortTrace(r, w, wire.SortOptions{MaxInMemory: *mem, TempDir: *tmp}); err != nil {
		log.Fatalf("sorting: %v", err)
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %d time-ordered records to %s", w.Count(), *out)
}
