// Package adscape is a from-scratch Go reproduction of "Annoyed Users: Ads
// and Ad-Block Usage in the Wild" (Pujol, Hohlfeld, Feldmann — IMC 2015):
// an Adblock Plus compatible filter engine, a Bro-style HTTP analyzer over
// packet-header traces, the paper's page-metadata reconstruction and
// ad-blocker-user inference, and the synthetic residential-broadband and
// active-crawl workloads that regenerate every table and figure of the
// paper's evaluation.
//
// The library lives under internal/; the runnable surfaces are the
// executables in cmd/ and the examples in examples/. The benchmark harness
// in bench_test.go regenerates each table and figure (BenchmarkTable1 …
// BenchmarkFigure7) and runs the design ablations documented in DESIGN.md.
package adscape
