package adscape

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (BenchmarkTable1 … BenchmarkFigure7), measures the hot paths of
// the methodology (filter matching, trace analysis, classification), and
// runs the design ablations called out in DESIGN.md §5. Benchmarks report
// the reproduced headline quantities via b.ReportMetric so a -bench run
// doubles as a compact reproduction record.

import (
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"adscape/internal/abp"
	"adscape/internal/analyzer"
	"adscape/internal/browser"
	"adscape/internal/core"
	"adscape/internal/daemon"
	"adscape/internal/experiments"
	"adscape/internal/filterlists"
	"adscape/internal/pipeline"
	"adscape/internal/rbn"
	"adscape/internal/urlutil"
	"adscape/internal/webgen"
	"adscape/internal/weblog"
	"adscape/internal/wire"
)

var (
	benchOnce sync.Once
	benchEnvV *experiments.Env
	benchErr  error
)

// benchEnv builds one shared environment with pre-generated traces so the
// per-experiment benchmarks time table/figure regeneration, not simulation.
func benchEnv(b *testing.B) *experiments.Env {
	b.Helper()
	benchOnce.Do(func() {
		opt := webgen.DefaultOptions()
		opt.NumSites = 150
		opt.ListOptions.ExtraGenericRules = 200
		world, err := webgen.NewWorld(opt)
		if err != nil {
			benchErr = err
			return
		}
		env := experiments.NewEnv(world, 0.002)
		env.CrawlSites = 40
		env.ActiveThreshold = 150
		// Pre-warm the expensive shared inputs.
		if _, err := env.Crawl(); err != nil {
			benchErr = err
			return
		}
		for _, tr := range []string{"rbn1", "rbn2"} {
			if _, err := env.Trace(tr); err != nil {
				benchErr = err
				return
			}
		}
		benchEnvV = env
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchEnvV
}

// benchExperiment runs one table/figure regeneration per iteration and
// reports its first three headline metrics.
func benchExperiment(b *testing.B, id string) {
	env := benchEnv(b)
	b.ResetTimer()
	var rep *experiments.Report
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = env.RunByID(id)
		if err != nil {
			b.Fatal(err)
		}
	}
	for i, m := range rep.Metrics {
		if i >= 3 {
			break
		}
		b.ReportMetric(m.Measured, fmt.Sprintf("metric%d", i))
	}
}

// One benchmark per table and figure of the evaluation.

func BenchmarkTable1(b *testing.B)    { benchExperiment(b, "table1") }
func BenchmarkFigure2(b *testing.B)   { benchExperiment(b, "figure2") }
func BenchmarkTable2(b *testing.B)    { benchExperiment(b, "table2") }
func BenchmarkFigure3(b *testing.B)   { benchExperiment(b, "figure3") }
func BenchmarkFigure4(b *testing.B)   { benchExperiment(b, "figure4") }
func BenchmarkTable3(b *testing.B)    { benchExperiment(b, "table3") }
func BenchmarkSection63(b *testing.B) { benchExperiment(b, "section63") }
func BenchmarkFigure5(b *testing.B)   { benchExperiment(b, "figure5") }
func BenchmarkTable4(b *testing.B)    { benchExperiment(b, "table4") }
func BenchmarkFigure6(b *testing.B)   { benchExperiment(b, "figure6") }
func BenchmarkSection73(b *testing.B) { benchExperiment(b, "section73") }
func BenchmarkSection81(b *testing.B) { benchExperiment(b, "section81") }
func BenchmarkTable5(b *testing.B)    { benchExperiment(b, "table5") }
func BenchmarkFigure7(b *testing.B)   { benchExperiment(b, "figure7") }

// BenchmarkExtensionEconomics regenerates the revenue-impact extension
// (the future work of §11).
func BenchmarkExtensionEconomics(b *testing.B) { benchExperiment(b, "extension-econ") }

// ---- methodology hot paths ----

func benchRequests(n int) []*abp.Request {
	rng := rand.New(rand.NewSource(99))
	classes := []urlutil.ContentClass{urlutil.ClassImage, urlutil.ClassScript, urlutil.ClassDocument, urlutil.ClassUnknown}
	hosts := []string{
		"http://static.news%03d.example/img/%05d.jpg",
		"http://dblclick.example/banner/creative_%03d%05d.gif",
		"http://trk%02d.example/pixel.gif?uid=%d",
		"http://www.shop%03d.example/api/suggest?q=term%d",
		"http://adnet%02d.example/adserver/show_ads.js?adunit=slot%d",
	}
	out := make([]*abp.Request, n)
	for i := range out {
		tmpl := hosts[rng.Intn(len(hosts))]
		out[i] = &abp.Request{
			URL:      fmt.Sprintf(tmpl, rng.Intn(100), rng.Intn(100000)),
			Class:    classes[rng.Intn(len(classes))],
			PageHost: "www.news001.example",
		}
	}
	return out
}

// BenchmarkMatcherIndexed vs BenchmarkMatcherLinear is the matcher-index
// ablation: the keyword index must beat the exhaustive scan by a wide
// margin at realistic list sizes.
func BenchmarkMatcherIndexed(b *testing.B) {
	bn, err := filterlists.NewBundle(filterlists.DefaultGenOptions())
	if err != nil {
		b.Fatal(err)
	}
	m := abp.NewMatcher()
	m.AddAll(bn.EasyList.Filters)
	m.AddAll(bn.EasyPrivacy.Filters)
	reqs := benchRequests(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Match(reqs[i%len(reqs)])
	}
}

func BenchmarkMatcherLinear(b *testing.B) {
	bn, err := filterlists.NewBundle(filterlists.DefaultGenOptions())
	if err != nil {
		b.Fatal(err)
	}
	m := abp.NewLinearMatcher()
	m.AddAll(bn.EasyList.Filters)
	m.AddAll(bn.EasyPrivacy.Filters)
	reqs := benchRequests(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Match(reqs[i%len(reqs)])
	}
}

// BenchmarkEngineClassify measures the full engine verdict path (blocking +
// exception + acceptable-ads resolution across all lists) over a realistic
// request mix. The cached/uncached pair isolates what the verdict cache buys
// on a working set that fits in it: "uncached" is the steady-state match
// cost through the shared MatchContext, "cached" is the LRU hit path.
func BenchmarkEngineClassify(b *testing.B) {
	bn, err := filterlists.NewBundle(filterlists.DefaultGenOptions())
	if err != nil {
		b.Fatal(err)
	}
	reqs := benchRequests(4096)
	for _, cfg := range []struct {
		name      string
		cacheSize int
	}{
		{"uncached", 0},
		{"cached", abp.DefaultVerdictCacheEntries},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			engine := bn.ClassifierEngine()
			engine.SetVerdictCacheSize(cfg.cacheSize)
			for _, r := range reqs { // warm cache and context pool
				engine.Classify(r)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				engine.Classify(reqs[i%len(reqs)])
			}
		})
	}
}

// BenchmarkEngineClassifyEasyListScale is the same verdict-path measurement
// at real-EasyList rule counts (~50K rules per list): the keyword index must
// keep per-request cost flat as the list grows, so this should track the
// default-size numbers closely — a gap here means probe fan-out is scaling
// with list size.
func BenchmarkEngineClassifyEasyListScale(b *testing.B) {
	bn, err := filterlists.NewBundle(filterlists.EasyListScaleOptions())
	if err != nil {
		b.Fatal(err)
	}
	reqs := benchRequests(4096)
	for _, cfg := range []struct {
		name      string
		cacheSize int
	}{
		{"uncached", 0},
		{"cached", abp.DefaultVerdictCacheEntries},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			engine := bn.ClassifierEngine()
			engine.SetVerdictCacheSize(cfg.cacheSize)
			for _, r := range reqs { // warm cache and context pool
				engine.Classify(r)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				engine.Classify(reqs[i%len(reqs)])
			}
			b.StopTimer()
			if st := engine.BloomStats(); st.Checked > 0 {
				b.ReportMetric(st.RejectRate()*100, "bloom_reject_pct/op")
			}
		})
	}
}

// benchSNIs builds a realistic SNI mix: mostly content hosts, some ad-tech
// servers, and a slice of denormalized wire shapes (upper case, rooted,
// explicit port) that the domain-key normalization must absorb.
func benchSNIs(n int) []string {
	rng := rand.New(rand.NewSource(77))
	tmpls := []string{
		"www.news%03d.example",
		"static.news%03d.example",
		"media.video%03d.example",
		"dblclick.example",
		"trk%02d.example",
		"adnet%02d.example",
		"WWW.News%03d.Example",
		"www.shop%03d.example.",
		"www.tech%03d.example:443",
	}
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf(tmpls[rng.Intn(len(tmpls))], rng.Intn(100))
	}
	return out
}

// BenchmarkClassifyDomain measures the encrypted-era verdict path: one SNI
// hostname in, one domain verdict out (DESIGN.md §16). The cached mode is the
// steady state of a TLS-dominant trace — repeat hostnames vastly outnumber
// distinct ones — and must stay allocation-free per verdict.
func BenchmarkClassifyDomain(b *testing.B) {
	bn, err := filterlists.NewBundle(filterlists.EasyListScaleOptions())
	if err != nil {
		b.Fatal(err)
	}
	snis := benchSNIs(4096)
	for _, cfg := range []struct {
		name      string
		cacheSize int
	}{
		{"uncached", 0},
		{"cached", abp.DefaultVerdictCacheEntries},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			engine := bn.ClassifierEngine()
			engine.SetVerdictCacheSize(cfg.cacheSize)
			for _, s := range snis { // warm cache and context pool
				engine.ClassifyDomain(s)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				engine.ClassifyDomain(snis[i%len(snis)])
			}
		})
	}
}

// BenchmarkParseEasyList measures filter-list parsing throughput.
func BenchmarkParseEasyList(b *testing.B) {
	opt := filterlists.DefaultGenOptions()
	cs := filterlists.Companies(opt.Seed)
	text := filterlists.EasyListText(cs, opt)
	b.SetBytes(int64(len(text)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := abp.ParseList("easylist", abp.ListAds, strings.NewReader(text)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnalyzer measures packet→transaction extraction throughput.
func BenchmarkAnalyzer(b *testing.B) {
	var pkts []*wire.Packet
	capture := func(p *wire.Packet) error { pkts = append(pkts, p); return nil }
	for c := 0; c < 50; c++ {
		em := wire.NewConnEmitter(capture, uint32(1000+c), uint16(5000+c), 2000, 80, 20e6, uint32(c))
		est, _ := em.Open(int64(c+1) * 1e9)
		for t := 0; t < 10; t++ {
			hdr := []byte(fmt.Sprintf("GET /obj%d HTTP/1.1\r\nHost: h%d.example\r\nReferer: http://h%d.example/\r\nUser-Agent: UA\r\n\r\n", t, c, c))
			em.Request(est+int64(t)*50e6, hdr)
			em.Response(est+int64(t)*50e6+20e6, []byte("HTTP/1.1 200 OK\r\nContent-Type: image/gif\r\nContent-Length: 2048\r\n\r\n"), 2048)
		}
		em.Close(est + 1e9)
	}
	var bytes int64
	for _, p := range pkts {
		bytes += int64(len(p.Payload)) + 31
	}
	b.SetBytes(bytes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		col := &analyzer.Collector{}
		an := analyzer.New(col)
		for _, p := range pkts {
			an.Add(p)
		}
		an.Finish()
		if len(col.Transactions) != 500 {
			b.Fatalf("transactions = %d", len(col.Transactions))
		}
	}
}

var (
	benchPktOnce sync.Once
	benchPkts    []*wire.Packet
	benchPktErr  error
)

// benchPackets captures one rbn2-preset packet trace into memory so the
// pipeline benchmark times analysis alone, not simulation.
func benchPackets(b *testing.B) []*wire.Packet {
	b.Helper()
	env := benchEnv(b)
	benchPktOnce.Do(func() {
		opt, err := rbn.Preset("rbn2", env.World, env.Scale)
		if err != nil {
			benchPktErr = err
			return
		}
		_, benchPktErr = rbn.Simulate(opt, func(p *wire.Packet) error {
			benchPkts = append(benchPkts, p)
			return nil
		})
	})
	if benchPktErr != nil {
		b.Fatal(benchPktErr)
	}
	return benchPkts
}

// BenchmarkPipeline measures sharded packet→transaction throughput at
// several worker counts over the same in-memory trace. The interesting
// number is the 4-worker vs 1-worker ratio on a multi-core machine; on a
// single-core runner the sub-benchmarks mostly confirm that the fan-out
// machinery costs little over the sequential analyzer.
func BenchmarkPipeline(b *testing.B) {
	pkts := benchPackets(b)
	var wireBytes int64
	for _, p := range pkts {
		wireBytes += int64(len(p.Payload)) + 31
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.SetBytes(wireBytes)
			var txs int
			for i := 0; i < b.N; i++ {
				res, err := pipeline.Analyze(pipeline.NewSliceSource(pkts), pipeline.Options{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				txs = res.Stats.HTTPTransactions
			}
			b.ReportMetric(float64(txs), "txs/op")
		})
	}
}

// BenchmarkDaemonWindows measures the continuous-service window path over
// the same in-memory trace as BenchmarkPipeline: rolling window assembly,
// per-window classification, crash-safe record emission to disk, and aged
// inference folds. The trace is sorted into capture order first, as the
// daemon's windowing requires (DESIGN.md §12).
func BenchmarkDaemonWindows(b *testing.B) {
	env := benchEnv(b)
	pkts := benchPackets(b)
	sorted := make([]*wire.Packet, len(pkts))
	copy(sorted, pkts)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Time < sorted[j].Time })
	engine := env.World.Bundle.ClassifierEngine()
	var wireBytes int64
	for _, p := range sorted {
		wireBytes += int64(len(p.Payload)) + 31
	}
	b.SetBytes(wireBytes)
	b.ReportAllocs()
	b.ResetTimer()
	var res *daemon.Result
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dir, err := os.MkdirTemp("", "benchdaemon")
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		res, err = daemon.Run(pipeline.NewSliceSource(sorted), daemon.Config{
			Dir: dir, Window: 5 * time.Minute, Grace: 10 * time.Second,
			IdleHorizon: 30 * time.Minute, Engine: engine, Workers: 4,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		os.RemoveAll(dir)
		b.StartTimer()
	}
	b.ReportMetric(float64(res.Run.WindowsEmitted), "windows/op")
}

// BenchmarkPipelineClassify measures the full per-request classification
// pipeline (page reconstruction + engine) over a realistic transaction log.
func BenchmarkPipelineClassify(b *testing.B) {
	env := benchEnv(b)
	td, err := env.Trace("rbn2")
	if err != nil {
		b.Fatal(err)
	}
	txs := make([]*weblog.Transaction, len(td.Collector.Transactions))
	copy(txs, td.Collector.Transactions)
	pl := core.NewPipeline(env.World.Bundle.ClassifierEngine())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := pl.ClassifyAll(txs)
		if len(res) != len(txs) {
			b.Fatal("length mismatch")
		}
	}
	b.ReportMetric(float64(len(txs)), "txs/op")
}

// BenchmarkBrowserPageLoad measures the emulated browser + packet emission.
func BenchmarkBrowserPageLoad(b *testing.B) {
	env := benchEnv(b)
	n := 0
	sink := func(*wire.Packet) error { n++; return nil }
	br := browser.New(browser.Config{
		World: env.World, Profile: browser.Vanilla,
		UserAgent: "Bench/1.0", ClientIP: 42, Emit: sink, Seed: 1,
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := br.LoadPage(int64(i+1)*10e9, env.World.Sites[i%40], i%50); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- design ablations (DESIGN.md §5) ----

func benchAblation(b *testing.B, repair, queryNorm, extFirst bool) {
	env := benchEnv(b)
	opt := experiments.AblationPageOptions(env, repair, queryNorm, extFirst)
	b.ResetTimer()
	var res experiments.AblationResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = env.AblationClassify(opt)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Agreement*100, "%agreement")
	b.ReportMetric(float64(res.FalsePositives), "falsepos")
	b.ReportMetric(float64(res.FalseNegatives), "falseneg")
}

// BenchmarkAblationFullMethod is the paper's methodology: referrer repair,
// query normalization and extension-first content types all on.
func BenchmarkAblationFullMethod(b *testing.B) { benchAblation(b, true, true, true) }

// BenchmarkAblationNoReferrerRepair disables the Location/embedded-URL
// repair of §3.1; page attribution degrades for redirect chains.
func BenchmarkAblationNoReferrerRepair(b *testing.B) { benchAblation(b, false, true, true) }

// BenchmarkAblationNoQueryNorm disables base-URL normalization; URL
// fragments embedded in query strings trigger spurious filter matches.
func BenchmarkAblationNoQueryNorm(b *testing.B) { benchAblation(b, true, false, true) }

// BenchmarkAblationHeaderOnlyCType trusts Content-Type headers instead of
// file extensions; MIME noise degrades typed-rule decisions.
func BenchmarkAblationHeaderOnlyCType(b *testing.B) { benchAblation(b, true, true, false) }

// BenchmarkAblationThreshold sweeps the ad-ratio threshold (§4.3 claims
// nearby thresholds do not alter the inferred population significantly).
func BenchmarkAblationThreshold(b *testing.B) {
	env := benchEnv(b)
	ths := []float64{0.01, 0.03, 0.05, 0.07, 0.10}
	b.ResetTimer()
	var shares map[float64]float64
	for i := 0; i < b.N; i++ {
		var err error
		shares, err = env.ThresholdSweep(ths)
		if err != nil {
			b.Fatal(err)
		}
	}
	lo, hi := 1.0, 0.0
	for _, s := range shares {
		if s < lo {
			lo = s
		}
		if s > hi {
			hi = s
		}
	}
	b.ReportMetric(shares[0.05]*100, "%C@5pct")
	b.ReportMetric((hi-lo)*100, "%spread")
}
