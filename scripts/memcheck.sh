#!/usr/bin/env bash
# Memory-regression gate: run the whole adtrace pipeline over the standard
# rbn2-preset fixture and fail when peak RSS exceeds the pinned budget.
#
#   ./scripts/memcheck.sh                # default budget
#   MAX_RSS_BYTES=400000000 ./scripts/memcheck.sh
#
# The budget is deliberately generous over the measured value (BENCH_pr9.json:
# ~219 MB at 4 workers on the same fixture) to absorb runner variance, while
# sitting well below the pre-interning baseline (~378 MB with -intern=false),
# so losing the interning/eviction machinery trips the gate.
set -euo pipefail

cd "$(dirname "$0")/.."
BUDGET="${MAX_RSS_BYTES:-330000000}"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

echo "building binaries..." >&2
go build -o "$WORK" ./cmd/adtrace ./cmd/rbnsim ./cmd/tracesort

"$WORK/rbnsim" -preset rbn2 -scale 0.002 -sites 200 -o "$WORK/raw.trace"
"$WORK/tracesort" -i "$WORK/raw.trace" -o "$WORK/rbn.trace"
rm "$WORK/raw.trace"

WORK="$WORK" BUDGET="$BUDGET" python3 - << 'PY'
import os, subprocess, sys

work, budget = os.environ["WORK"], int(os.environ["BUDGET"])
argv = [f"{work}/adtrace", "-i", f"{work}/rbn.trace",
        "-workers", "4", "-sites", "200", "-users"]
print("running:", " ".join(argv), file=sys.stderr)
with open(os.devnull, "wb") as null:
    p = subprocess.Popen(argv, stdout=null)
    _, status, ru = os.wait4(p.pid, 0)
if status != 0:
    raise SystemExit(f"adtrace failed with status {status}")
rss = ru.ru_maxrss * 1024  # KiB on Linux
print(f"max RSS: {rss} bytes ({rss / (1 << 20):.1f} MB), "
      f"budget {budget} bytes ({budget / (1 << 20):.1f} MB)")
if rss > budget:
    raise SystemExit(
        f"memory regression: max RSS {rss} exceeds budget {budget}")
print("within budget")
PY
