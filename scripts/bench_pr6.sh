#!/usr/bin/env bash
# Regenerates BENCH_pr6.json: throughput, allocations, and peak memory for
# the batch pipeline vs the continuous-service (daemon) window path over the
# same rbn2-preset trace.
#
#   ./scripts/bench_pr6.sh            # writes BENCH_pr6.json at the repo root
#   BENCHTIME=3x ./scripts/bench_pr6.sh   # more benchmark iterations
#
# Both figures run the compiled test binary in its own process so max RSS is
# per-mode (measured via wait4 rusage). RSS includes the shared fixture — the
# generated world plus the in-memory packet trace — which is identical for
# both modes, so the delta between them is the mode's own working set.
set -euo pipefail

cd "$(dirname "$0")/.."
BENCHTIME="${BENCHTIME:-1x}"
BIN="$(mktemp -d)/adscape.bench"
trap 'rm -rf "$(dirname "$BIN")"' EXIT

echo "building benchmark binary..." >&2
go test -c -o "$BIN" .

BENCH_BIN="$BIN" BENCHTIME="$BENCHTIME" python3 - << 'PY'
import json, os, re, subprocess, sys

bin_path = os.environ["BENCH_BIN"]
benchtime = os.environ["BENCHTIME"]

def run(bench):
    """Run one benchmark in its own process; return (parsed line, max RSS bytes)."""
    cmd = [bin_path, "-test.run", "^$", "-test.benchmem",
           "-test.benchtime", benchtime, "-test.bench", bench]
    print(f"running {bench} ...", file=sys.stderr)
    p = subprocess.Popen(cmd, stdout=subprocess.PIPE, text=True)
    out = p.stdout.read()
    _, status, ru = os.wait4(p.pid, 0)
    if status != 0:
        print(out, file=sys.stderr)
        raise SystemExit(f"{bench} failed with status {status}")
    line = next(l for l in out.splitlines() if l.startswith("Benchmark"))
    # e.g. "BenchmarkX  1  23808326177 ns/op  31.35 MB/s  181.0 windows/op  2464016320 B/op  48540086 allocs/op"
    fields = {}
    for val, unit in re.findall(r"([\d.]+)\s+(\S+/(?:op|s))", line):
        fields[unit] = float(val)
    return fields, ru.ru_maxrss * 1024  # ru_maxrss is KiB on Linux

batch, batch_rss = run(r"BenchmarkPipeline/workers=4$")
daemon, daemon_rss = run(r"BenchmarkDaemonWindows$")

txs = batch["txs/op"]  # identical trace; window totals proven equal in tests

def mode(fields, rss, extra=None):
    secs = fields["ns/op"] / 1e9
    d = {
        "tx_per_sec": round(txs / secs, 1),
        "allocs_per_tx": round(fields["allocs/op"] / txs, 1),
        "wire_mb_per_sec": fields.get("MB/s"),
        "seconds_per_run": round(secs, 2),
        "max_rss_bytes": rss,
    }
    if extra:
        d.update(extra)
    return d

doc = {
    "pr": 6,
    "description": "Batch pipeline vs continuous-service daemon window path "
                   "(rolling 5m windows, crash-safe emission, aged inference "
                   "state) over the same sorted rbn2-preset trace, 4 workers.",
    "benchmarks": {
        "batch": mode(batch, batch_rss),
        "daemon_windows": mode(daemon, daemon_rss,
                               {"windows_per_run": daemon.get("windows/op")}),
    },
    "transactions_per_run": int(txs),
    "notes": "max_rss_bytes includes the shared in-memory fixture (generated "
             "world + packet trace), identical across modes. Regenerate with "
             "scripts/bench_pr6.sh.",
}
with open("BENCH_pr6.json", "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(json.dumps(doc, indent=2))
PY
