#!/usr/bin/env bash
# Benchmark driver, parameterized by PR: regenerates BENCH_<pr>.json at the
# repo root.
#
#   ./scripts/bench.sh pr7          # single-process vs distributed (default)
#   ./scripts/bench.sh pr6          # batch pipeline vs daemon window path
#   ./scripts/bench.sh pr8          # Classify at default vs EasyList scale
#   BENCHTIME=3x ./scripts/bench.sh pr6   # more benchmark iterations (pr6/pr8)
#
# Every measured mode runs in its own process; max RSS comes from wait4
# rusage (the peak resident set of the largest process in the mode's tree).
# Fixture generation is measured separately, so analysis-mode RSS is no
# longer polluted by shared fixture state (see BENCH_pr6.json notes).
set -euo pipefail

cd "$(dirname "$0")/.."
PR="${1:-pr7}"

case "$PR" in
pr6)
	BENCHTIME="${BENCHTIME:-1x}"
	BIN="$(mktemp -d)/adscape.bench"
	trap 'rm -rf "$(dirname "$BIN")"' EXIT

	echo "building benchmark binary..." >&2
	go test -c -o "$BIN" .

	BENCH_BIN="$BIN" BENCHTIME="$BENCHTIME" python3 - << 'PY'
import json, os, re, subprocess, sys

bin_path = os.environ["BENCH_BIN"]
benchtime = os.environ["BENCHTIME"]

def run(bench):
    """Run one benchmark in its own process; return (parsed line, max RSS bytes)."""
    cmd = [bin_path, "-test.run", "^$", "-test.benchmem",
           "-test.benchtime", benchtime, "-test.bench", bench]
    print(f"running {bench} ...", file=sys.stderr)
    p = subprocess.Popen(cmd, stdout=subprocess.PIPE, text=True)
    out = p.stdout.read()
    _, status, ru = os.wait4(p.pid, 0)
    if status != 0:
        print(out, file=sys.stderr)
        raise SystemExit(f"{bench} failed with status {status}")
    line = next(l for l in out.splitlines() if l.startswith("Benchmark"))
    fields = {}
    for val, unit in re.findall(r"([\d.]+)\s+(\S+/(?:op|s))", line):
        fields[unit] = float(val)
    return fields, ru.ru_maxrss * 1024  # ru_maxrss is KiB on Linux

batch, batch_rss = run(r"BenchmarkPipeline/workers=4$")
daemon, daemon_rss = run(r"BenchmarkDaemonWindows$")

txs = batch["txs/op"]  # identical trace; window totals proven equal in tests

def mode(fields, rss, extra=None):
    secs = fields["ns/op"] / 1e9
    d = {
        "tx_per_sec": round(txs / secs, 1),
        "allocs_per_tx": round(fields["allocs/op"] / txs, 1),
        "wire_mb_per_sec": fields.get("MB/s"),
        "seconds_per_run": round(secs, 2),
        "max_rss_bytes": rss,
    }
    if extra:
        d.update(extra)
    return d

doc = {
    "pr": 6,
    "description": "Batch pipeline vs continuous-service daemon window path "
                   "(rolling 5m windows, crash-safe emission, aged inference "
                   "state) over the same sorted rbn2-preset trace, 4 workers.",
    "benchmarks": {
        "batch": mode(batch, batch_rss),
        "daemon_windows": mode(daemon, daemon_rss,
                               {"windows_per_run": daemon.get("windows/op")}),
    },
    "transactions_per_run": int(txs),
    "notes": "max_rss_bytes includes the shared in-memory fixture (generated "
             "world + packet trace), identical across modes. Regenerate with "
             "scripts/bench.sh pr6.",
}
with open("BENCH_pr6.json", "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(json.dumps(doc, indent=2))
PY
	;;

pr7)
	WORK="$(mktemp -d)"
	trap 'rm -rf "$WORK"' EXIT

	echo "building binaries..." >&2
	go build -o "$WORK" ./cmd/adtrace ./cmd/adshard ./cmd/rbnsim ./cmd/tracesort

	WORK="$WORK" python3 - << 'PY'
import json, os, subprocess, sys

work = os.environ["WORK"]

def run(argv, stdout=None, cwd=None):
    """Run argv; return (seconds, peak RSS bytes of the largest process in
    the tree, per wait4 rusage accumulation)."""
    print("running:", " ".join(argv), file=sys.stderr)
    t0 = os.times().elapsed
    p = subprocess.Popen(argv, stdout=stdout, stderr=subprocess.DEVNULL, cwd=cwd)
    _, status, ru = os.wait4(p.pid, 0)
    secs = os.times().elapsed - t0
    if status != 0:
        raise SystemExit(f"{argv[0]} failed with status {status}")
    return secs, ru.ru_maxrss * 1024

trace = os.path.join(work, "rbn.trace")
raw = os.path.join(work, "raw.trace")

# Fixture: generated and sorted on disk, measured on its own so the analysis
# modes' RSS reflects only their working sets.
fx_secs = fx_rss = 0
s, r = run([f"{work}/rbnsim", "-preset", "rbn2", "-scale", "0.002",
            "-sites", "200", "-o", raw])
fx_secs += s; fx_rss = max(fx_rss, r)
s, r = run([f"{work}/tracesort", "-i", raw, "-o", trace])
fx_secs += s; fx_rss = max(fx_rss, r)
os.unlink(raw)

common = ["-sites", "200", "-users"]

with open(f"{work}/single.txt", "wb") as out:
    single_secs, single_rss = run(
        [f"{work}/adtrace", "-i", trace, "-workers", "4"] + common, stdout=out)

splitdir = os.path.join(work, "split")
with open(f"{work}/dist.txt", "wb") as out:
    dist_secs, dist_rss = run(
        [f"{work}/adshard", "-n", "3", "-workers", "4",
         "-adtrace", f"{work}/adtrace", "-work", splitdir, "-keep"]
        + common + [trace], stdout=out)

# Pre-split: the same three flow-complete partitions already on disk (the
# multi-file capture scenario), so the coordinator pays no split I/O.
parts = sorted(os.path.join(splitdir, f) for f in os.listdir(splitdir)
               if f.endswith(".trace"))
with open(f"{work}/presplit.txt", "wb") as out:
    pre_secs, pre_rss = run(
        [f"{work}/adshard", "-n", "3", "-workers", "4", "-split", "files",
         "-adtrace", f"{work}/adtrace"] + common + parts, stdout=out)

for mode in ("dist", "presplit"):
    if open(f"{work}/single.txt", "rb").read() != open(f"{work}/{mode}.txt", "rb").read():
        raise SystemExit(f"{mode} stdout differs from single-process run")
print("stdout byte-identical across all modes", file=sys.stderr)

doc = {
    "pr": 7,
    "description": "Single-process adtrace (-workers 4) vs adshard "
                   "distributing the same rbn2-preset trace across 3 adtrace "
                   "worker subprocesses; stdout verified byte-identical "
                   "across all modes during this run.",
    "benchmarks": {
        "fixture_generate_and_sort": {
            "seconds": round(fx_secs, 2),
            "max_rss_bytes": fx_rss,
        },
        "single_process": {
            "seconds": round(single_secs, 2),
            "max_rss_bytes": single_rss,
        },
        "distributed_3workers_timesplit": {
            "seconds": round(dist_secs, 2),
            "max_rss_bytes": dist_rss,
            "includes_split_io": True,
        },
        "distributed_3workers_presplit": {
            "seconds": round(pre_secs, 2),
            "max_rss_bytes": pre_rss,
            "includes_split_io": False,
        },
    },
    "notes": "max_rss_bytes is the peak resident set of the largest process "
             "in each mode's tree (wait4 rusage); the on-disk fixture is "
             "generated in a separate step, so analysis modes carry no "
             "shared-fixture RSS. Time-split mode pays two extra passes over "
             "the trace (count + split); presplit models a capture already "
             "partitioned into files. Regenerate with scripts/bench.sh pr7.",
}
with open("BENCH_pr7.json", "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(json.dumps(doc, indent=2))
PY
	;;

pr8)
	# One op is one Classify call (sub-microsecond), so the default iteration
	# count is high where pr6's whole-pipeline ops default to a single run.
	BENCHTIME="${BENCHTIME:-100000x}"
	BIN="$(mktemp -d)/adscape.bench"
	trap 'rm -rf "$(dirname "$BIN")"' EXIT

	echo "building benchmark binary..." >&2
	go test -c -o "$BIN" .

	BENCH_BIN="$BIN" BENCHTIME="$BENCHTIME" python3 - << 'PY'
import json, os, re, subprocess, sys

bin_path = os.environ["BENCH_BIN"]
benchtime = os.environ["BENCHTIME"]

def run(bench):
    """Run one benchmark in its own process; return (parsed line, max RSS bytes)."""
    cmd = [bin_path, "-test.run", "^$", "-test.benchmem",
           "-test.benchtime", benchtime, "-test.bench", bench]
    print(f"running {bench} ...", file=sys.stderr)
    p = subprocess.Popen(cmd, stdout=subprocess.PIPE, text=True)
    out = p.stdout.read()
    _, status, ru = os.wait4(p.pid, 0)
    if status != 0:
        print(out, file=sys.stderr)
        raise SystemExit(f"{bench} failed with status {status}")
    line = next(l for l in out.splitlines() if l.startswith("Benchmark"))
    fields = {}
    for val, unit in re.findall(r"([\d.]+)\s+(\S+/(?:op|s))", line):
        fields[unit] = float(val)
    return fields, ru.ru_maxrss * 1024  # ru_maxrss is KiB on Linux

def mode(fields, rss):
    return {
        "ns_per_classify": round(fields["ns/op"], 1),
        "allocs_per_classify": fields["allocs/op"],
        "bytes_per_classify": fields["B/op"],
        "max_rss_bytes": rss,
    }

doc = {
    "pr": 8,
    "description": "Engine.Classify verdict path at the default generated "
                   "list size vs real-EasyList scale (~50K rules per list), "
                   "uncached (full match every call) and with the verdict "
                   "cache warm. Flat ns/op across scales shows the keyword "
                   "index keeps probe fan-out independent of list size; this "
                   "is the per-request cost a hot-swapped engine must sustain.",
    "benchmarks": {},
    "notes": "max_rss_bytes includes the generated bundle and its index "
             "(dominant at EasyList scale). Regenerate with "
             "scripts/bench.sh pr8.",
}
for scale, bench in [("default", "BenchmarkEngineClassify"),
                     ("easylist_scale", "BenchmarkEngineClassifyEasyListScale")]:
    for cache in ("uncached", "cached"):
        f, rss = run(rf"^{bench}$/^{cache}$")
        doc["benchmarks"][f"{scale}_{cache}"] = mode(f, rss)

with open("BENCH_pr8.json", "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(json.dumps(doc, indent=2))
PY
	;;

pr9)
	# Memory-scale measurement: whole-pipeline max RSS with the ingest
	# dedup pool on (default) vs off (-intern=false baseline), stdout
	# verified byte-identical across 1/2/4/8 workers and both modes, plus
	# the EasyList-scale verdict path with the bloom pre-filter's measured
	# reject rate.
	BENCHTIME="${BENCHTIME:-100000x}"
	WORK="$(mktemp -d)"
	trap 'rm -rf "$WORK"' EXIT

	echo "building binaries..." >&2
	go build -o "$WORK" ./cmd/adtrace ./cmd/rbnsim ./cmd/tracesort
	go test -c -o "$WORK/adscape.bench" .

	WORK="$WORK" BENCHTIME="$BENCHTIME" python3 - << 'PY'
import json, os, re, subprocess, sys

work = os.environ["WORK"]
benchtime = os.environ["BENCHTIME"]

def run(argv, stdout=None):
    print("running:", " ".join(argv), file=sys.stderr)
    t0 = os.times().elapsed
    p = subprocess.Popen(argv, stdout=stdout, stderr=subprocess.DEVNULL)
    _, status, ru = os.wait4(p.pid, 0)
    secs = os.times().elapsed - t0
    if status != 0:
        raise SystemExit(f"{argv[0]} failed with status {status}")
    return secs, ru.ru_maxrss * 1024

def run_bench(bench):
    cmd = [f"{work}/adscape.bench", "-test.run", "^$", "-test.benchmem",
           "-test.benchtime", benchtime, "-test.bench", bench]
    print(f"running {bench} ...", file=sys.stderr)
    p = subprocess.Popen(cmd, stdout=subprocess.PIPE, text=True)
    out = p.stdout.read()
    _, status, ru = os.wait4(p.pid, 0)
    if status != 0:
        print(out, file=sys.stderr)
        raise SystemExit(f"{bench} failed with status {status}")
    line = next(l for l in out.splitlines() if l.startswith("Benchmark"))
    fields = {}
    for val, unit in re.findall(r"([\d.]+)\s+(\S+/(?:op|s))", line):
        fields[unit] = float(val)
    return fields, ru.ru_maxrss * 1024

trace = os.path.join(work, "rbn.trace")
raw = os.path.join(work, "raw.trace")

# Fixture on disk, measured separately (same protocol as pr7).
fx_secs = fx_rss = 0
s, r = run([f"{work}/rbnsim", "-preset", "rbn2", "-scale", "0.002",
            "-sites", "200", "-o", raw])
fx_secs += s; fx_rss = max(fx_rss, r)
s, r = run([f"{work}/tracesort", "-i", raw, "-o", trace])
fx_secs += s; fx_rss = max(fx_rss, r)
os.unlink(raw)

common = ["-sites", "200", "-users"]
pipeline = {}
outputs = {}
for mode, extra in [("interned", []), ("no_intern", ["-intern=false"])]:
    pipeline[mode] = {}
    for w in (1, 2, 4, 8):
        path = f"{work}/{mode}-w{w}.txt"
        with open(path, "wb") as out:
            secs, rss = run([f"{work}/adtrace", "-i", trace,
                             "-workers", str(w)] + extra + common, stdout=out)
        pipeline[mode][f"workers_{w}"] = {
            "seconds": round(secs, 2), "max_rss_bytes": rss}
        outputs[(mode, w)] = open(path, "rb").read()

# The degradation section's per-shard breakdown is worker-layout diagnostics
# (its line count tracks -workers by design, since before this bench); every
# analysis line must be byte-identical. Same-worker-count comparisons across
# intern modes stay fully byte-exact.
def normalized(data):
    return b"\n".join(l for l in data.split(b"\n")
                      if not l.startswith(b"  shard ")
                      and not l.startswith(b"degradation (merged over"))

for w in (1, 2, 4, 8):
    if outputs[("interned", w)] != outputs[("no_intern", w)]:
        raise SystemExit(f"stdout differs between intern modes at workers={w}")
ref = normalized(outputs[("interned", 1)])
for (mode, w), data in outputs.items():
    if normalized(data) != ref:
        raise SystemExit(f"stdout differs: {mode} workers={w}")
print("stdout byte-identical across intern modes; analysis output "
      "byte-identical across workers 1/2/4/8", file=sys.stderr)

classify = {}
for cache in ("uncached", "cached"):
    f, rss = run_bench(rf"^BenchmarkEngineClassifyEasyListScale$/^{cache}$")
    classify[f"easylist_scale_{cache}"] = {
        "ns_per_classify": round(f["ns/op"], 1),
        "allocs_per_classify": f["allocs/op"],
        "bytes_per_classify": f["B/op"],
        "bloom_reject_pct": f.get("bloom_reject_pct/op"),
        "max_rss_bytes": rss,
    }

interned4 = pipeline["interned"]["workers_4"]["max_rss_bytes"]
baseline4 = pipeline["no_intern"]["workers_4"]["max_rss_bytes"]
doc = {
    "pr": 9,
    "description": "Memory-scale hot path: whole-pipeline adtrace max RSS "
                   "with the ingest string-dedup pool, URL interning, and "
                   "bounded page reconstruction (default) vs -intern=false "
                   "(dedup-pool ablation baseline) at 1/2/4/8 workers over "
                   "the rbn2-preset trace, stdout verified byte-identical "
                   "across every mode during this run; plus the EasyList-"
                   "scale verdict path with the bloom pre-filter's measured "
                   "token reject rate.",
    "benchmarks": {
        "fixture_generate_and_sort": {
            "seconds": round(fx_secs, 2), "max_rss_bytes": fx_rss},
        "pipeline": pipeline,
        "classify": classify,
    },
    "pipeline_rss_ratio_interned_vs_baseline_w4":
        round(interned4 / baseline4, 3),
    "notes": "max_rss_bytes is the peak resident set per process tree "
             "(wait4 rusage); the fixture is generated separately. The "
             "no_intern baseline disables only the ingest dedup pool — URL "
             "interning in classification and the bloom pre-filter are "
             "structural and always on. bloom_reject_pct is the share of "
             "URL-token index probes rejected before any bucket lookup. "
             "Regenerate with scripts/bench.sh pr9.",
}
with open("BENCH_pr9.json", "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(json.dumps(doc, indent=2))
PY
	;;

pr10)
	# Encrypted-era measurement: the same pipeline over a legacy 2015-era
	# trace and a modern (-https-share 0.95) TLS-dominant twin, modern stdout
	# verified byte-identical at workers 1 vs 4 (the SNI classify stage's
	# determinism), plus the ClassifyDomain verdict path at EasyList scale.
	BENCHTIME="${BENCHTIME:-100000x}"
	WORK="$(mktemp -d)"
	trap 'rm -rf "$WORK"' EXIT

	echo "building binaries..." >&2
	go build -o "$WORK" ./cmd/adtrace ./cmd/rbnsim ./cmd/tracesort
	go test -c -o "$WORK/adscape.bench" .

	WORK="$WORK" BENCHTIME="$BENCHTIME" python3 - << 'PY'
import json, os, re, subprocess, sys

work = os.environ["WORK"]
benchtime = os.environ["BENCHTIME"]

def run(argv, stdout=None):
    print("running:", " ".join(argv), file=sys.stderr)
    t0 = os.times().elapsed
    p = subprocess.Popen(argv, stdout=stdout, stderr=subprocess.DEVNULL)
    _, status, ru = os.wait4(p.pid, 0)
    secs = os.times().elapsed - t0
    if status != 0:
        raise SystemExit(f"{argv[0]} failed with status {status}")
    return secs, ru.ru_maxrss * 1024

def run_bench(bench):
    cmd = [f"{work}/adscape.bench", "-test.run", "^$", "-test.benchmem",
           "-test.benchtime", benchtime, "-test.bench", bench]
    print(f"running {bench} ...", file=sys.stderr)
    p = subprocess.Popen(cmd, stdout=subprocess.PIPE, text=True)
    out = p.stdout.read()
    _, status, ru = os.wait4(p.pid, 0)
    if status != 0:
        print(out, file=sys.stderr)
        raise SystemExit(f"{bench} failed with status {status}")
    line = next(l for l in out.splitlines() if l.startswith("Benchmark"))
    fields = {}
    for val, unit in re.findall(r"([\d.]+)\s+(\S+/(?:op|s))", line):
        fields[unit] = float(val)
    return fields, ru.ru_maxrss * 1024

# Twin fixtures: same preset/scale/seed, legacy vs encrypted-era schemes.
fixtures = {}
traces = {}
for era, extra in [("legacy", []), ("modern", ["-https-share", "0.95"])]:
    raw = os.path.join(work, f"{era}.raw.trace")
    trace = os.path.join(work, f"{era}.trace")
    secs = rss = 0
    s, r = run([f"{work}/rbnsim", "-preset", "rbn2", "-scale", "0.002",
                "-sites", "200", "-o", raw] + extra)
    secs += s; rss = max(rss, r)
    s, r = run([f"{work}/tracesort", "-i", raw, "-o", trace])
    secs += s; rss = max(rss, r)
    os.unlink(raw)
    fixtures[era] = {"seconds": round(secs, 2), "max_rss_bytes": rss}
    traces[era] = trace

pipeline = {}
outputs = {}
for era, extra in [("legacy", []), ("modern", ["-https-share", "0.95"])]:
    pipeline[era] = {}
    for w in (1, 4):
        path = f"{work}/{era}-w{w}.txt"
        with open(path, "wb") as out:
            secs, rss = run([f"{work}/adtrace", "-i", traces[era],
                             "-workers", str(w), "-sites", "200",
                             "-users"] + extra, stdout=out)
        pipeline[era][f"workers_{w}"] = {
            "seconds": round(secs, 2), "max_rss_bytes": rss}
        outputs[(era, w)] = open(path, "rb").read()

# The degradation section's per-shard breakdown is worker-layout diagnostics
# (its line count tracks -workers by design, same as the pr9 bench); every
# analysis line must be byte-identical.
def normalized(data):
    return b"\n".join(l for l in data.split(b"\n")
                      if not l.startswith(b"  shard ")
                      and not l.startswith(b"degradation (merged over"))

for era in ("legacy", "modern"):
    if normalized(outputs[(era, 1)]) != normalized(outputs[(era, 4)]):
        raise SystemExit(f"{era} analysis output differs between workers 1 and 4")
print("analysis output byte-identical at workers 1 vs 4 for both eras",
      file=sys.stderr)

def grab(era, prefix):
    for line in outputs[(era, 1)].decode().splitlines():
        if line.startswith(prefix):
            return line.split(":", 1)[1].strip()
    return None

coverage = {era: {"sni_coverage": grab(era, "sni coverage"),
                  "tls_ad_flows": grab(era, "tls ad flows")}
            for era in ("legacy", "modern")}

classify = {}
for cache in ("uncached", "cached"):
    f, rss = run_bench(rf"^BenchmarkClassifyDomain$/^{cache}$")
    classify[f"easylist_scale_{cache}"] = {
        "ns_per_verdict": round(f["ns/op"], 1),
        "allocs_per_verdict": f["allocs/op"],
        "bytes_per_verdict": f["B/op"],
        "max_rss_bytes": rss,
    }

doc = {
    "pr": 10,
    "description": "Encrypted-era classification: whole-pipeline adtrace over "
                   "a legacy 2015-era rbn2-preset trace and its modern "
                   "(-https-share 0.95, TLS-dominant, SNI-classified) twin at "
                   "1/4 workers, stdout verified byte-identical across worker "
                   "counts during this run; plus the abp.ClassifyDomain SNI "
                   "verdict path at EasyList scale.",
    "benchmarks": {
        "fixture_generate_and_sort": fixtures,
        "pipeline": pipeline,
        "classify_domain": classify,
    },
    "report_lines": coverage,
    "notes": "max_rss_bytes is the peak resident set per process tree (wait4 "
             "rusage); fixtures are generated separately. The modern trace "
             "re-draws only object schemes (post-pass), so it is the legacy "
             "trace's twin with more TLS, not a different workload. "
             "allocs_per_verdict for the cached mode is the 0-alloc steady "
             "state the AllocsPerRun test gates. Regenerate with "
             "scripts/bench.sh pr10.",
}
with open("BENCH_pr10.json", "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(json.dumps(doc, indent=2))
PY
	;;

*)
	echo "usage: $0 [pr6|pr7|pr8|pr9|pr10]" >&2
	exit 2
	;;
esac
